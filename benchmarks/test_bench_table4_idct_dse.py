"""Paper Table 4 + Section VII ranges: the IDCT design-space exploration.

Runs the conventional and the slack-based flow on the 15 IDCT design points
(latencies 32..8, pipelined and not) and prints the per-point areas, the
savings column and the power/throughput/area ranges.  Set ``REPRO_IDCT_ROWS=8``
for the full 8x8 row pass (longer run time); the default of 2 rows preserves
the shape of the results.

Reproduction targets (shape, not absolute values):
* the slack-based flow wins on most design points,
* a handful of timing-dominated points may lose (the paper's D5-D7),
* the average saving is in the high single digits / low tens of percent,
* the sweep spans a wide power range and a multi-x throughput range.
"""

import json
import os

import pytest

from conftest import idct_rows
from repro.flows import (
    DSEEngine,
    format_table,
    idct_design_points,
    run_dse,
    table4_rows,
)
from repro.workloads import IDCTPointFactory

CLOCK = 1500.0

#: Committed per-point metrics of the rows=2 sweep (both flows).  The flows
#: must stay bit-for-bit reproducible: any drift in areas, powers, savings or
#: schedules fails the golden test below.  Regenerate deliberately with
#: ``REPRO_UPDATE_GOLDEN=1`` after an intended behaviour change.
GOLDEN_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "golden_table4_metrics.json")


@pytest.fixture(scope="module")
def dse_result(library):
    points = idct_design_points(clock_period=CLOCK)
    return run_dse(IDCTPointFactory(rows=idct_rows()), library, points)


@pytest.fixture(scope="module")
def engine_result(library):
    points = idct_design_points(clock_period=CLOCK)
    engine = DSEEngine(IDCTPointFactory(rows=idct_rows()), library, points,
                       executor="process", max_workers=2)
    return engine.run()


def test_table4_area_savings(benchmark, dse_result):
    header, rows = table4_rows(dse_result)
    print()
    print(format_table(header, rows,
                       title=f"Table 4. Area savings for timing-based approach "
                             f"(IDCT rows={idct_rows()}, T={CLOCK:.0f} ps; "
                             f"paper average: 8.9 %)"))

    benchmark.pedantic(lambda: dse_result.average_saving_percent(),
                       rounds=1, iterations=1)

    assert len(dse_result.entries) == 15
    # Every run must meet timing after "logic synthesis" (the RTL model).
    for entry in dse_result.entries:
        assert entry.conventional.meets_timing
        assert entry.slack_based.meets_timing
    # Shape: the slack-based flow wins on a clear majority of points ...
    assert dse_result.wins() >= 9
    # ... and the average saving is positive and paper-sized (the paper
    # reports 8.9 %; we accept anything in the 3-30 % band).
    average = dse_result.average_saving_percent()
    assert 3.0 <= average <= 30.0


def test_section7_exploration_ranges(benchmark, dse_result):
    power_range = dse_result.power_range()
    throughput_range = dse_result.throughput_range()
    area_range = dse_result.area_range()
    print()
    print(format_table(
        ["metric", "range (max/min)", "paper"],
        [["power", f"{power_range:.1f}x", "~20x"],
         ["throughput", f"{throughput_range:.1f}x", "~7x"],
         ["area", f"{area_range:.2f}x", "~1.5x"]],
        title="Section VII exploration ranges",
    ))
    benchmark.pedantic(lambda: dse_result.power_range(), rounds=1, iterations=1)
    # Shape: a wide power range, a multi-x throughput range, a modest area range.
    assert throughput_range >= 4.0
    assert power_range >= 4.0
    assert 1.1 <= area_range <= 4.0


def test_parallel_engine_matches_serial_and_records_wall_time(
        benchmark, dse_result, engine_result):
    """The engine's 2-worker sweep must agree with the serial baseline
    entry for entry; both wall times are recorded for trend tracking."""
    assert not engine_result.errors
    assert ([entry.metrics() for entry in engine_result.entries]
            == [entry.metrics() for entry in dse_result.entries])

    benchmark.extra_info["serial_wall_s"] = round(dse_result.wall_time_seconds, 3)
    benchmark.extra_info["engine_wall_s"] = round(
        engine_result.wall_time_seconds, 3)
    benchmark.extra_info["engine_executor"] = engine_result.executor
    benchmark.extra_info["engine_workers"] = engine_result.max_workers
    print()
    print(format_table(
        ["harness", "wall time (s)"],
        [["serial run_dse", f"{dse_result.wall_time_seconds:.2f}"],
         [f"DSEEngine ({engine_result.executor}, "
          f"{engine_result.max_workers} workers)",
          f"{engine_result.wall_time_seconds:.2f}"]],
        title="Table 4 sweep wall time, serial vs parallel engine",
    ))
    benchmark.pedantic(lambda: engine_result.wall_time_seconds,
                       rounds=1, iterations=1)


def test_flow_outputs_match_golden_and_record_recovery_time(benchmark,
                                                            dse_result):
    """Drift guard + area-recovery trend line for the CI smoke job.

    Every ``DSEEntry.metrics()`` dict of the sweep must equal the committed
    golden JSON byte for byte (the flows are deterministic; the incremental
    timing/cache subsystem must not change a single output).  The summed
    area-recovery wall time of all 30 flow runs is recorded in the benchmark
    JSON artifact so CI can track the incremental pass over time.
    """
    if idct_rows() != 2:
        pytest.skip("golden metrics are recorded for the default "
                    "REPRO_IDCT_ROWS=2 sweep")
    metrics = json.loads(json.dumps(
        [entry.metrics() for entry in dse_result.entries]))
    if os.environ.get("REPRO_UPDATE_GOLDEN") == "1":
        with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
            json.dump(metrics, handle, indent=1, sort_keys=True)
        pytest.skip(f"golden metrics regenerated at {GOLDEN_PATH}")
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        golden = json.load(handle)
    assert metrics == golden, (
        "flow outputs drifted from the committed golden metrics; if the "
        "change is intended, regenerate with REPRO_UPDATE_GOLDEN=1"
    )

    recovery_seconds = sum(
        result.details.get("area_recovery_seconds", 0.0)
        for entry in dse_result.entries
        for result in (entry.conventional, entry.slack_based)
    )
    benchmark.extra_info["area_recovery_wall_s"] = round(recovery_seconds, 4)
    print()
    print(format_table(
        ["metric", "value"],
        [["area-recovery wall time (30 flow runs)", f"{recovery_seconds:.3f} s"],
         ["golden drift", "none"]],
        title="Area-recovery timing + golden flow-output guard",
    ))
    benchmark.pedantic(lambda: recovery_seconds, rounds=1, iterations=1)


def test_pipelining_increases_area_and_throughput(benchmark, dse_result):
    by_key = {(entry.point.latency, entry.point.pipeline_ii): entry
              for entry in dse_result.entries}
    benchmark.pedantic(lambda: len(by_key), rounds=1, iterations=1)
    compared = 0
    for (latency, ii), entry in by_key.items():
        if ii is None:
            continue
        base = by_key.get((latency, None))
        if base is None:
            continue
        compared += 1
        assert entry.slack_based.throughput > base.slack_based.throughput
        assert entry.area_slack >= base.area_slack * 0.95
    assert compared >= 3
