"""Paper Table 5: relative scheduling execution times.

Compares, on the largest IDCT design point (the paper's D1):

* conventional scheduling (fastest resources, no timing analysis),
* slack-based scheduling (sequential-slack budgeting + re-budgeting), and
* the same slack-based flow with the timing analysis replaced by the
  Bellman-Ford constraint-graph formulation (paper ref. [10]).

The paper reports 1 / 1.18 / 10.2.  The reproduction target is the ordering
and the order of magnitude: the slack-based scheduler costs a modest factor
over the conventional one, while the Bellman-Ford formulation is many times
slower than the topological formulation.
"""

import time

import pytest

from conftest import idct_rows
from repro.core.bellman_ford import compute_sequential_slack_bellman_ford
from repro.core.sequential_slack import compute_sequential_slack
from repro.core.timed_dfg import build_timed_dfg
from repro.flows import conventional_flow, format_table, slack_based_flow, table5_rows
from repro.ir.operations import OpKind
from repro.workloads import idct_design

CLOCK = 1500.0


@pytest.fixture(scope="module")
def design(library):
    return idct_design(latency=32, rows=idct_rows(), clock_period=CLOCK)


def test_conventional_scheduling_time(benchmark, library, design):
    result = benchmark.pedantic(
        lambda: conventional_flow(design, library, clock_period=CLOCK),
        rounds=3, iterations=1)
    assert result.meets_timing


def test_slack_based_scheduling_time(benchmark, library, design):
    result = benchmark.pedantic(
        lambda: slack_based_flow(design, library, clock_period=CLOCK),
        rounds=3, iterations=1)
    assert result.meets_timing


def test_bellman_ford_timing_analysis_time(benchmark, library, design):
    """One timing-analysis call: topological vs Bellman-Ford cost."""
    timed = build_timed_dfg(design)
    delays = {op.name: library.operation_delay(op)
              for op in design.dfg.operations if op.kind is not OpKind.CONST}
    benchmark.pedantic(
        lambda: compute_sequential_slack_bellman_ford(timed, delays, CLOCK),
        rounds=3, iterations=1)
    reference = compute_sequential_slack(timed, delays, CLOCK)
    baseline = compute_sequential_slack_bellman_ford(timed, delays, CLOCK)
    assert baseline.worst_slack() == pytest.approx(reference.worst_slack())


def test_table5_relative_times(benchmark, library, design):
    start = time.perf_counter()
    conventional = conventional_flow(design, library, clock_period=CLOCK)
    conventional_seconds = conventional.scheduling_seconds

    slack = slack_based_flow(design, library, clock_period=CLOCK)
    slack_seconds = slack.scheduling_seconds

    # Scheduling time of the slack flow if every slack evaluation used the
    # Bellman-Ford formulation: measured by scaling the number of timing
    # evaluations by the per-call cost ratio of the two analyses.
    timed = build_timed_dfg(design)
    delays = {op.name: library.operation_delay(op)
              for op in design.dfg.operations if op.kind is not OpKind.CONST}
    # Warm both paths once outside the timed windows: the first call on a
    # fresh timed DFG pays the one-time CSR interning / edge-order caching
    # (see repro.core.graphkit), which would otherwise be billed to
    # whichever implementation happens to run first.
    compute_sequential_slack(timed, delays, CLOCK)
    compute_sequential_slack_bellman_ford(timed, delays, CLOCK)
    repeats = 10
    t0 = time.perf_counter()
    for _ in range(repeats):
        compute_sequential_slack(timed, delays, CLOCK)
    topological_cost = (time.perf_counter() - t0) / repeats
    t0 = time.perf_counter()
    for _ in range(repeats):
        compute_sequential_slack_bellman_ford(timed, delays, CLOCK)
    bellman_cost = (time.perf_counter() - t0) / repeats
    analysis_ratio = bellman_cost / max(topological_cost, 1e-9)
    timing_share = max(slack_seconds - conventional_seconds, 0.0)
    bellman_seconds = conventional_seconds + timing_share * analysis_ratio

    header, rows = table5_rows(conventional_seconds, slack_seconds, bellman_seconds)
    print()
    print(format_table(header, rows,
                       title="Table 5. Relative scheduling execution times "
                             "(paper: 1 / 1.18 / 10.2)"))
    print(f"  raw: conventional={conventional_seconds:.3f}s "
          f"slack={slack_seconds:.3f}s bellman-ford(modelled)={bellman_seconds:.3f}s "
          f"analysis ratio={analysis_ratio:.1f}x")

    benchmark.pedantic(lambda: compute_sequential_slack(timed, delays, CLOCK),
                       rounds=3, iterations=1)

    # Shape: the slack-based scheduler costs more than the conventional one,
    # and replacing the topological timing analysis with the Bellman-Ford
    # formulation costs more again.  (The absolute ratio is smaller than the
    # paper's 10.2x because our DFGs are far shallower than the industrial
    # design D1 and our Bellman-Ford implementation terminates early once the
    # relaxation converges — see EXPERIMENTS.md; the scaling benchmarks in
    # test_bench_scaling.py show the gap widening with design size.)
    assert slack_seconds > conventional_seconds
    assert analysis_ratio > 1.2
    assert bellman_seconds > slack_seconds
    assert time.perf_counter() - start < 600.0
