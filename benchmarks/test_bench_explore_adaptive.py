"""Adaptive-vs-dense exploration of the Table-4 IDCT latency axis.

The acceptance bar of the exploration subsystem: on the paper's IDCT
workload, the adaptive explorer must recover the dense-grid Pareto
frontier within epsilon while issuing at least ``TARGET_SAVING``x fewer
flow evaluations than the dense grid.

The sweep uses ``rows=1`` deliberately (independent of ``REPRO_IDCT_ROWS``):
the flows are deterministic, so this benchmark asserts against one fixed,
fast workload while the golden Table-4 suite keeps guarding the rows=2
dense sweep byte for byte.

The frontier comparison JSON is written to ``REPRO_FRONTIER_JSON`` (if
set) so CI can upload it as an artifact.
"""

import json
import os

import pytest

from repro.explore import AdaptiveExplorer, ResultStore, compare_frontiers
from repro.explore.report import frontier_report
from repro.flows import format_table
from repro.workloads import IDCTPointFactory

CLOCK = 1500.0
LATENCIES = range(8, 33)  # the Table-4 axis, densified to every latency
#: Frontier recovery tolerance: 2 latency states additively, 8 % on area.
EPSILON = (2.0, ("rel", 0.08))
TARGET_SAVING = 3.0


@pytest.fixture(scope="module")
def explorations(library, tmp_path_factory):
    store_path = str(tmp_path_factory.mktemp("explore") / "idct_r1.jsonl")
    factory = IDCTPointFactory(rows=1)

    def explorer():
        return AdaptiveExplorer(factory, library, LATENCIES,
                                clock_period=CLOCK,
                                store=ResultStore(store_path),
                                workload="idct_r1")

    adaptive = explorer().explore()
    # The dense grid runs over the same store, so it only pays for the
    # points the adaptive pass skipped — and its total evaluation count is
    # reconstructed from evaluated + restored.
    dense = explorer().explore_dense()
    return adaptive, dense


def test_adaptive_recovers_dense_frontier_with_3x_fewer_evaluations(
        benchmark, explorations):
    adaptive, dense = explorations
    dense_evaluations = dense.engine_evaluations + dense.restored
    assert dense_evaluations == len(list(LATENCIES))

    diff = compare_frontiers(adaptive.front, dense.front, epsilon=EPSILON,
                             name_a="adaptive", name_b="dense")
    saving = dense_evaluations / max(adaptive.engine_evaluations, 1)

    print()
    print(format_table(
        ["mode", "flow evals", "front size", "hypervolume", "knee"],
        [["dense", str(2 * dense_evaluations), str(len(dense.front)),
          f"{diff.hypervolume_b:.4g}", dense.knee().label],
         ["adaptive", str(adaptive.flow_runs), str(len(adaptive.front)),
          f"{diff.hypervolume_a:.4g}", adaptive.knee().label]],
        title=f"Adaptive vs dense IDCT exploration "
              f"(latencies {min(LATENCIES)}..{max(LATENCIES)}, "
              f"T={CLOCK:.0f} ps; saving {saving:.1f}x, "
              f"coverage {100 * diff.coverage_ab:.0f}%)",
    ))

    # Acceptance: full epsilon-recovery of the dense frontier ...
    assert diff.coverage_ab == 1.0, (
        "adaptive exploration lost dense frontier points beyond epsilon: "
        f"{[p.label for p in diff.only_in_b]}")
    # ... at >= 3x fewer flow evaluations.
    assert saving >= TARGET_SAVING, (
        f"adaptive exploration used {adaptive.engine_evaluations} "
        f"evaluations, more than 1/{TARGET_SAVING} of the dense "
        f"{dense_evaluations}")
    # The adaptive front itself never contains a dominated point.
    from repro.explore import pareto_front
    assert pareto_front(adaptive.front) == adaptive.front

    benchmark.extra_info["adaptive_flow_runs"] = adaptive.flow_runs
    benchmark.extra_info["dense_flow_runs"] = 2 * dense_evaluations
    benchmark.extra_info["saving_factor"] = round(saving, 2)
    benchmark.extra_info["coverage"] = diff.coverage_ab
    benchmark.pedantic(lambda: saving, rounds=1, iterations=1)

    artifact_path = os.environ.get("REPRO_FRONTIER_JSON")
    if artifact_path:
        report = frontier_report(adaptive, baseline=dense, epsilon=EPSILON)
        report["dense_front"] = frontier_report(dense)["front"]
        with open(artifact_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=1, sort_keys=True)
        print(f"frontier artifact written to {artifact_path}")


def test_store_makes_repeat_exploration_free(benchmark, explorations, library,
                                             tmp_path_factory):
    adaptive, dense = explorations
    # Everything the two passes evaluated is in the store; a re-run of the
    # dense grid through a *fresh* store object evaluates nothing.
    assert dense.restored == len(adaptive.evaluated_latencies)

    store_path = str(tmp_path_factory.mktemp("explore2") / "idct_r1.jsonl")
    factory = IDCTPointFactory(rows=1)
    first = AdaptiveExplorer(factory, library, LATENCIES, clock_period=CLOCK,
                             store=ResultStore(store_path),
                             workload="idct_r1").explore()
    rerun = AdaptiveExplorer(factory, library, LATENCIES, clock_period=CLOCK,
                             store=ResultStore(store_path),
                             workload="idct_r1").explore()
    assert first.engine_evaluations > 0
    assert rerun.engine_evaluations == 0
    assert rerun.restored == len(first.evaluated_latencies)
    assert [p.values for p in rerun.front] == [p.values for p in first.front]

    benchmark.extra_info["first_wall_s"] = round(first.wall_time_seconds, 3)
    benchmark.extra_info["rerun_wall_s"] = round(rerun.wall_time_seconds, 3)
    benchmark.pedantic(lambda: rerun.restored, rounds=1, iterations=1)
