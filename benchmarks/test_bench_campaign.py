"""Campaign fan-in throughput: merging many synthetic shard stores.

The merge layer is pure dict/set work over canonical JSONL lines, so it
must stay cheap even for corpora far larger than a nightly fleet produces.
The suite synthesizes shard directories (no flow runs) with realistic
overlap — every record appears in roughly two shards — then times the full
``merge_shards`` fan-in and asserts the merge invariants on the result.

New entries deliberately have no ``baseline_timings.json`` counterpart yet:
the perf gate reports one-sided benchmarks without failing, and the
baseline is regenerated wholesale on a reference machine.
"""

import json
import os

from repro.campaign.merge import (
    CORPUS_FILE,
    METRICS_FILE,
    STORE_FILE,
    merge_shards,
)
from repro.core.jsonl import dump_record

SHARDS = 8
RECORDS_PER_SHARD = 250


def _corpus_record(index):
    return {
        "schema": 1, "kind": "failure", "oracle": "area-recovery",
        "fingerprint": f"c{index:06d}", "seed": index, "ops": 5,
        "details": f"violation {index}", "shrunk_from": None,
        "spec": {"seed": index, "clock_period": 1500.0, "pipeline_ii": None,
                 "margin_fraction": 0.05},
    }


def _store_record(index):
    return {
        "schema": 1, "workload": "idct",
        "key": {"fingerprint": f"s{index:06d}", "clock_period": 1500.0,
                "pipeline_ii": None, "margin_fraction": 0.05},
        "point": {"name": f"P{index}", "latency": 6 + index % 8,
                  "pipeline_ii": None, "clock_period": 1500.0},
        "metrics": {
            "point": {"name": f"P{index}", "latency": 6 + index % 8,
                      "pipeline_ii": None, "clock_period": 1500.0},
            "slack_based": {"latency_steps": 6 + index % 8,
                            "area": 100.0 + index},
        },
    }


def _write_shards(root):
    """Each global record index lands on two neighbouring shards (overlap)."""
    dirs = []
    for shard in range(SHARDS):
        directory = os.path.join(root, f"shard-{shard}")
        os.makedirs(directory)
        lo = shard * RECORDS_PER_SHARD
        indices = range(lo, lo + 2 * RECORDS_PER_SHARD)
        with open(os.path.join(directory, CORPUS_FILE), "w",
                  encoding="utf-8") as handle:
            for index in indices:
                handle.write(dump_record(
                    _corpus_record(index % (SHARDS * RECORDS_PER_SHARD)))
                    + "\n")
        with open(os.path.join(directory, STORE_FILE), "w",
                  encoding="utf-8") as handle:
            for index in indices:
                handle.write(dump_record(
                    _store_record(index % (SHARDS * RECORDS_PER_SHARD)))
                    + "\n")
        with open(os.path.join(directory, METRICS_FILE), "w",
                  encoding="utf-8") as handle:
            json.dump({"schema": 1, "campaign": "bench", "seed": 0,
                       "metrics": {"counters": {}}}, handle)
        dirs.append(directory)
    return dirs


def test_merge_throughput_on_synthetic_fleet(benchmark, tmp_path):
    shard_dirs = _write_shards(str(tmp_path / "fleet"))
    out_root = str(tmp_path / "merged")
    runs = [0]

    def fan_in():
        out = os.path.join(out_root, str(runs[0]))
        runs[0] += 1
        return merge_shards(shard_dirs, out)

    report = benchmark(fan_in)
    total = SHARDS * RECORDS_PER_SHARD
    for section in ("corpus", "store"):
        stats = report[section]
        assert stats["records_in"] == 2 * total
        assert stats["unique"] == total
        assert stats["exact_duplicates"] == total
        assert stats["conflicts"] == 0
        assert stats["skipped_lines"] == 0
    assert report["clean"] is True
    print(f"\nmerged {2 * total} records/store from {SHARDS} shards -> "
          f"{total} unique")
