"""Paper Fig. 2 / Table 2: scheduling strategies on the interpolation kernel.

Case 1 = fastest resources + ASAP-style scheduling + per-state area recovery,
Case 2 = slowest resources upgraded on the fly,
Slack  = the proposed slack-budgeted flow.

The reproduction target is the *shape*: the slack-based flow must be much
smaller than Case 1 (the paper reports 2180 vs 3408 FU area units, ~36 %).
"""

import pytest

from repro.flows import conventional_flow, format_table, slack_based_flow, table2_rows
from repro.workloads import interpolation_design

CLOCK = 1100.0


@pytest.fixture(scope="module")
def design():
    return interpolation_design()


def test_case1_fastest_asap(benchmark, library, design):
    result = benchmark.pedantic(
        lambda: conventional_flow(design, library, clock_period=CLOCK),
        rounds=3, iterations=1)
    assert result.meets_timing


def test_case2_slowest_upgrade(benchmark, library, design):
    result = benchmark.pedantic(
        lambda: conventional_flow(design, library, clock_period=CLOCK,
                                  initial_grades="slowest"),
        rounds=3, iterations=1)
    assert result.meets_timing


def test_slack_based(benchmark, library, design):
    result = benchmark.pedantic(
        lambda: slack_based_flow(design, library, clock_period=CLOCK),
        rounds=3, iterations=1)
    assert result.meets_timing


def test_table2_comparison(benchmark, library, design):
    case1 = conventional_flow(design, library, clock_period=CLOCK)
    case2 = conventional_flow(design, library, clock_period=CLOCK,
                              initial_grades="slowest")
    slack = benchmark.pedantic(
        lambda: slack_based_flow(design, library, clock_period=CLOCK),
        rounds=1, iterations=1)

    header, rows = table2_rows(case1, case2, slack)
    print()
    print(format_table(header, rows,
                       title="Table 2. Comparison of different scheduling "
                             "solutions (paper: 3408 / 3419 / 2180 FU area)"))

    fu_case1 = case1.datapath.binding.total_fu_area()
    fu_slack = slack.datapath.binding.total_fu_area()
    assert case1.meets_timing and case2.meets_timing and slack.meets_timing
    # The slack-based implementation must be substantially smaller than the
    # conventional fastest-resources one (paper: ~36 % smaller).
    assert fu_slack < fu_case1
    assert (fu_case1 - fu_slack) / fu_case1 > 0.15
    # It ends up in the neighbourhood of the paper's optimum (3 mid-grade
    # multipliers + 2 relaxed adders ~ 2180 units).
    assert fu_slack < 2600
