"""Loop-carried pipelined scheduling: modulo-schedule cost and the II axis.

The block-bounded benchmarks answer "how much area does slack budgeting
recover at a fixed latency"; this file answers the pipelined questions the
cyclic refactor added:

* what does modulo scheduling *cost* in scheduler wall time relative to the
  block scheduler on the same design (tracked by the perf gate), and
* what does the II-vs-area frontier look like — shrinking the initiation
  interval must buy throughput with FU area.
"""

from repro.flows import DesignPoint, SweepSession, conventional_flow, format_table
from repro.workloads import fir_design
from repro.workloads.factories import KernelPointFactory

CLOCK = 1500.0
LATENCY = 8
TAPS = 12


def test_modulo_scheduling_time(benchmark, library):
    """Scheduler wall time of the pipelined conventional flow (perf gate)."""
    design = fir_design(taps=TAPS, latency=LATENCY, clock_period=CLOCK)

    def pipelined():
        return conventional_flow(design, library, clock_period=CLOCK,
                                 scheduling="pipeline")

    flow = benchmark.pedantic(pipelined, rounds=3, iterations=1)
    ii = flow.details["initiation_interval"]
    assert flow.meets_timing
    assert 1 <= ii < LATENCY  # the loop genuinely overlapped iterations
    benchmark.extra_info["achieved_ii"] = ii
    benchmark.extra_info["scheduling_s"] = round(
        flow.scheduling_seconds, 6)

    block = conventional_flow(design, library, clock_period=CLOCK)
    print()
    print(format_table(
        ["scheduler", "II", "latency", "sched time (s)"],
        [["block list", "-", f"{block.latency_steps}",
          f"{block.scheduling_seconds:.4f}"],
         ["modulo", f"{ii}", f"{flow.latency_steps}",
          f"{flow.scheduling_seconds:.4f}"]],
        title="Modulo vs block scheduling on the 12-tap FIR"))


def test_ii_sweep_trades_area_for_throughput(benchmark, library):
    """One pipelined point per candidate II: area must fall as II grows."""
    factory = KernelPointFactory("fir", params=(("taps", TAPS),))
    points = [DesignPoint(name=f"II{ii}", latency=LATENCY, pipeline_ii=ii,
                          clock_period=CLOCK)
              for ii in (1, 2, 4, 8)]

    def sweep():
        session = SweepSession(factory, library, scheduling="pipeline")
        return session.run(points)

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    areas = []
    for entry in result.entries:
        flow = entry.slack_based
        ii = flow.details["initiation_interval"]
        areas.append((ii, flow.total_area))
        rows.append([entry.point.name, f"{ii}",
                     f"{flow.total_area:.0f}",
                     "yes" if flow.meets_timing else "no"])
    print()
    print(format_table(["point", "achieved II", "A_slack", "timing met"],
                       rows, title="II-vs-area axis on the 12-tap FIR"))

    assert all(row[-1] == "yes" for row in rows)
    # The frontier shape: more overlap (smaller II) costs FU area.
    by_ii = sorted(areas)
    assert by_ii[0][1] > by_ii[-1][1]
    ordered = [area for _, area in by_ii]
    assert ordered == sorted(ordered, reverse=True)
