#!/usr/bin/env python3
"""Perf-regression gate: compare a pytest-benchmark run against the baseline.

Usage (what the CI bench-smoke job runs after the benchmark suite)::

    python benchmarks/check_timings.py benchmark-timings.json

The baseline (``benchmarks/baseline_timings.json``) records the mean wall
time of every tracked benchmark.  The comparator computes each benchmark's
ratio against its baseline, **normalizes by the median ratio across all
benchmarks** — which cancels machine-speed differences between the runner
that produced the baseline and the runner executing the gate — and fails
when any benchmark's normalized ratio exceeds ``1 + tolerance`` (default
tolerance 0.25, i.e. a >25 % regression relative to the suite-wide drift).

The normalization is bounded: a median ratio outside ``[1/1.75, 1.75]``
fails as "suite-wide drift", so a *correlated* regression of the shared hot
path cannot hide by shifting the median (and a baseline from a wildly
different machine is rejected instead of silently recalibrated).

Regenerating the baseline (after an intentional perf change, on any
broadly comparable machine)::

    REPRO_UPDATE_BASELINE=1 python benchmarks/check_timings.py benchmark-timings.json

Benchmarks appearing only on one side are reported but never fail the gate
(new benchmarks have no baseline yet; retired ones linger in the baseline
until it is regenerated).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

DEFAULT_BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "baseline_timings.json")
DEFAULT_TOLERANCE = 0.25
#: Benchmarks faster than this (in both runs) are excluded from gating:
#: sub-10ms means are dominated by scheduler/allocator noise, and a 25%
#: swing there says nothing about the code.
DEFAULT_MIN_SECONDS = 0.01
#: Backstop on the normalization itself: with few gated benchmarks a
#: *correlated* regression (everything sharing the hot flow path slowing
#: down together) shifts the median and would otherwise normalize itself
#: away.  CI runners of one class vary well under this factor, so a median
#: ratio outside [1/x, x] is treated as a suite-wide regression (or a
#: baseline from a very different machine — regenerate it), not as machine
#: speed.
DEFAULT_MAX_MACHINE_FACTOR = 1.75
BASELINE_SCHEMA = 1


def load_current(path: str) -> Dict[str, float]:
    """Mean seconds per benchmark from a ``--benchmark-json`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    means: Dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        stats = bench.get("stats") or {}
        mean = stats.get("mean")
        if name and isinstance(mean, (int, float)) and mean > 0:
            means[str(name)] = float(mean)
    return means


def load_baseline(path: str) -> Dict[str, float]:
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("schema") != BASELINE_SCHEMA:
        return {}
    benchmarks = data.get("benchmarks", {})
    return {str(name): float(mean) for name, mean in benchmarks.items()
            if isinstance(mean, (int, float)) and mean > 0}


def write_baseline(path: str, means: Dict[str, float]) -> None:
    payload = {
        "schema": BASELINE_SCHEMA,
        "note": ("Mean benchmark wall times (seconds). Regenerate with "
                 "REPRO_UPDATE_BASELINE=1 python benchmarks/check_timings.py "
                 "<benchmark-json>; comparisons are normalized by the "
                 "median ratio (bounded at 1.75x suite-wide drift), so "
                 "runner-speed differences largely cancel."),
        "benchmarks": {name: round(mean, 9)
                       for name, mean in sorted(means.items())},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def compare(
    current: Dict[str, float],
    baseline: Dict[str, float],
    tolerance: float = DEFAULT_TOLERANCE,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    max_machine_factor: float = DEFAULT_MAX_MACHINE_FACTOR,
) -> Tuple[List[str], List[str]]:
    """Return ``(regressions, notes)``.

    ``regressions`` lines fail the gate; ``notes`` are informational
    (side-only benchmarks, the normalization factor, skipped micro
    benchmarks, improvements).
    """
    shared = sorted(set(current) & set(baseline))
    notes: List[str] = []
    for name in sorted(set(current) - set(baseline)):
        notes.append(f"new benchmark (no baseline): {name}")
    for name in sorted(set(baseline) - set(current)):
        notes.append(f"baseline benchmark missing from this run: {name}")
    if not shared:
        notes.append("no shared benchmarks; nothing to compare")
        return [], notes

    ratios = {name: current[name] / baseline[name] for name in shared}
    gated = [name for name in shared
             if max(current[name], baseline[name]) >= min_seconds]
    skipped = len(shared) - len(gated)
    if skipped:
        notes.append(f"{skipped} micro benchmark(s) under {min_seconds}s "
                     "excluded from gating (noise-dominated)")
    # The machine factor comes from the substantial benchmarks only — micro
    # ratios are exactly the noise the normalization must not absorb.
    machine = _median([ratios[name] for name in (gated or shared)])
    notes.append(f"machine-speed normalization factor: {machine:.3f}x")

    regressions: List[str] = []
    if not (1.0 / max_machine_factor <= machine <= max_machine_factor):
        regressions.append(
            f"suite-wide drift: median ratio {machine:.2f}x is outside "
            f"[{1.0 / max_machine_factor:.2f}x, {max_machine_factor:.2f}x] "
            "— either a correlated regression of the shared hot path or a "
            "baseline from a very different machine (regenerate with "
            "REPRO_UPDATE_BASELINE=1)")
    for name in gated:
        normalized = ratios[name] / machine
        if normalized > 1.0 + tolerance:
            regressions.append(
                f"{name}: {current[name]:.4f}s vs baseline "
                f"{baseline[name]:.4f}s ({normalized:.2f}x normalized, "
                f"limit {1.0 + tolerance:.2f}x)")
        elif normalized < 1.0 - tolerance:
            notes.append(
                f"improvement: {name} at {normalized:.2f}x of baseline "
                "(consider regenerating the baseline)")
    return regressions, notes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare pytest-benchmark timings against the committed "
                    "baseline (median-normalized, >25%% regressions fail).")
    parser.add_argument("current", help="pytest --benchmark-json output file")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument("--min-seconds", type=float,
                        default=DEFAULT_MIN_SECONDS,
                        help="benchmarks faster than this on both sides are "
                             "excluded from gating (default 0.01)")
    parser.add_argument("--max-machine-factor", type=float,
                        default=DEFAULT_MAX_MACHINE_FACTOR,
                        help="fail when the median ratio itself leaves "
                             "[1/x, x] — a correlated regression cannot "
                             "hide in the normalization (default 1.75)")
    args = parser.parse_args(argv)

    current = load_current(args.current)
    if not current:
        print(f"check_timings: no benchmark stats in {args.current}; "
              "nothing to check")
        return 0

    if os.environ.get("REPRO_UPDATE_BASELINE") == "1":
        write_baseline(args.baseline, current)
        print(f"check_timings: baseline regenerated with {len(current)} "
              f"benchmark(s) at {args.baseline}")
        return 0

    baseline = load_baseline(args.baseline)
    if not baseline:
        print(f"check_timings: no baseline at {args.baseline}; run with "
              "REPRO_UPDATE_BASELINE=1 to create one")
        return 0

    regressions, notes = compare(current, baseline, tolerance=args.tolerance,
                                 min_seconds=args.min_seconds,
                                 max_machine_factor=args.max_machine_factor)
    for note in notes:
        print(f"check_timings: {note}")
    if regressions:
        print(f"check_timings: {len(regressions)} benchmark(s) regressed "
              f">{args.tolerance:.0%} vs baseline:")
        for line in regressions:
            print(f"  REGRESSION {line}")
        return 1
    print(f"check_timings: {len(set(current) & set(baseline))} shared "
          f"benchmark(s) within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
