"""Paper Table 3: sequential slack on the resizer's timed DFG.

Prints the arrival/required/slack rows for a concrete (d, D, T) instantiation
of the paper's symbolic regime (D + d < T < 2D) and checks them against the
closed forms; benchmarks the slack computation itself.
"""

import pytest

from repro.core.opspan import OperationSpans
from repro.core.sequential_slack import compute_sequential_slack
from repro.core.timed_dfg import build_timed_dfg
from repro.flows import format_table
from repro.workloads import resizer_main_design

D_IO, D_OP, CLOCK = 50.0, 700.0, 1200.0   # satisfies D + d < T < 2D


def test_table3_sequential_slack(benchmark):
    design = resizer_main_design()
    spans = OperationSpans(design, strict_io_successors=True)
    timed = build_timed_dfg(design, spans=spans)
    delays = {}
    for op in design.dfg.operations:
        if op.name in ("rd_a", "rd_b", "wr"):
            delays[op.name] = D_IO
        elif op.name in ("add", "div", "sub", "mul", "mux"):
            delays[op.name] = D_OP

    result = benchmark(lambda: compute_sequential_slack(timed, delays, CLOCK))

    rows = [[op, f"{result.arrival[op]:.0f}", f"{result.required[op]:.0f}",
             f"{result.slack[op]:.0f}"]
            for op in ("rd_a", "add", "div", "sub", "rd_b", "mul", "mux", "wr")]
    print()
    print(format_table(["Op", "Arr(op)", "Req(op)", "slack(op)"], rows,
                       title=f"Table 3 (d={D_IO:.0f}, D={D_OP:.0f}, T={CLOCK:.0f})"))

    d, D, T = D_IO, D_OP, CLOCK
    assert result.slack["rd_a"] == pytest.approx(2 * T - 4 * D - d)
    assert result.slack["add"] == pytest.approx(2 * T - 4 * D - d)
    assert result.slack["div"] == pytest.approx(2 * T - 4 * D - d)
    assert result.slack["sub"] == pytest.approx(2 * T - 4 * D - d)
    assert result.slack["mux"] == pytest.approx(2 * T - 4 * D - d)
    assert result.slack["rd_b"] == pytest.approx(T - 2 * D - d)
    assert result.slack["mul"] == pytest.approx(T - 2 * D - d)
    assert result.slack["wr"] == pytest.approx(3 * T - 4 * D - 2 * d)
    # Paper: rd_a -> add -> div -> sub -> mux is the critical path.
    assert set(result.critical_operations()) == {"rd_a", "add", "div", "sub", "mux"}
