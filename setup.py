"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file only exists
so that ``pip install -e .`` keeps working on environments whose pip/wheel
combination cannot build PEP 660 editable wheels (e.g. offline environments
without the ``wheel`` package).
"""

from setuptools import setup

setup()
