"""Tests of the unified ``repro`` console script."""

import json

from repro.cli import main


def test_no_command_prints_usage(capsys):
    assert main([]) == 2
    out = capsys.readouterr().out
    assert "explore" in out and "verify" in out and "sweep" in out


def test_help_flag_prints_usage(capsys):
    assert main(["--help"]) == 0
    assert "usage: repro" in capsys.readouterr().out


def test_unknown_command_fails(capsys):
    assert main(["frobnicate"]) == 2
    err = capsys.readouterr().err
    assert "unknown command" in err


def test_verify_subcommand_forwards(capsys):
    # A tiny deterministic fuzz slice through the forwarding path.
    code = main(["verify", "run", "--iterations", "2", "--seed", "7",
                 "--oracles", "pareto-front", "--no-shrink"])
    assert code == 0


def test_explore_subcommand_forwards(capsys):
    code = main(["explore", "--workload", "fir", "--latencies", "6:8",
                 "--dense"])
    assert code == 0
    assert "frontier" in capsys.readouterr().out


def test_sweep_subcommand_runs_session(tmp_path, capsys):
    out_path = tmp_path / "metrics.json"
    code = main(["sweep", "--rows", "1", "--latencies", "6:7",
                 "--stats", "--json", str(out_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "Sweep: 2 point(s)" in out
    assert "SweepSession reuse" in out
    metrics = json.loads(out_path.read_text())
    assert len(metrics) == 2
    assert {m["point"]["name"] for m in metrics} == {"L6", "L7"}


def test_sweep_rejects_bad_grid(capsys):
    assert main(["sweep", "--latencies", "not-a-grid"]) == 2
    assert "LO:HI" in capsys.readouterr().err


def test_sweep_ii_range_pipelines_the_points(tmp_path, capsys):
    out_path = tmp_path / "metrics.json"
    code = main(["sweep", "--rows", "1", "--latencies", "8",
                 "--ii", "4:5", "--json", str(out_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "Sweep: 2 point(s)" in out
    metrics = json.loads(out_path.read_text())
    assert {m["point"]["name"] for m in metrics} == {"II4", "II5"}
    assert {m["point"]["pipeline_ii"] for m in metrics} == {4, 5}
    for m in metrics:
        assert m["slack_based"]["meets_timing"]


def test_sweep_rejects_bad_ii_range(capsys):
    assert main(["sweep", "--ii", "three"]) == 2
    assert "--ii expects LO:HI" in capsys.readouterr().err
    assert main(["sweep", "--ii", "5:2"]) == 2
    assert "LO <= HI" in capsys.readouterr().err


# -- observability: repro profile and --trace-out ----------------------------------


def test_usage_mentions_profile_and_trace_out(capsys):
    main([])
    out = capsys.readouterr().out
    assert "profile" in out and "--trace-out" in out


def test_profile_sweep_prints_phase_breakdown(tmp_path, capsys):
    report_path = tmp_path / "report.json"
    jsonl_path = tmp_path / "spans.jsonl"
    chrome_path = tmp_path / "trace.json"
    code = main(["profile", "sweep", "--rows", "1", "--latencies", "6:7",
                 "--report-json", str(report_path),
                 "--jsonl-out", str(jsonl_path),
                 "--chrome-out", str(chrome_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "Phase profile: repro sweep" in out
    assert "schedule" in out and "coverage" in out
    report = json.loads(report_path.read_text())
    assert report["span_count"] > 0
    # Phase totals sum to the traced time within the 5 %-of-wall bar.
    assert abs(sum(report["phases"].values()) - report["traced_seconds"]) \
        <= 0.05 * report["wall_seconds"]
    assert jsonl_path.read_text().strip()
    trace = json.loads(chrome_path.read_text())
    assert any(event["ph"] == "X" for event in trace["traceEvents"])


def test_profile_forwards_subcommand_flags_unabbreviated(tmp_path, capsys):
    # --json belongs to `repro sweep`; allow_abbrev=False keeps the profile
    # parser's --jsonl-out from capturing it.
    metrics_path = tmp_path / "metrics.json"
    code = main(["profile", "sweep", "--rows", "1", "--latencies", "6",
                 "--json", str(metrics_path)])
    assert code == 0
    assert len(json.loads(metrics_path.read_text())) == 1


def test_trace_out_records_spans_for_any_command(tmp_path, capsys):
    from repro.obs.export import load_spans_jsonl

    trace_path = tmp_path / "spans.jsonl"
    code = main(["sweep", "--rows", "1", "--latencies", "6:7",
                 "--trace-out", str(trace_path)])
    assert code == 0
    assert f"wrote {trace_path}" in capsys.readouterr().out
    roots = load_spans_jsonl(str(trace_path))
    names = {span.name for root in roots for span in root.walk()}
    assert "sweep.run" in names and "flow.schedule" in names


def test_trace_out_jsonl_converts_to_chrome_byte_stably(tmp_path, capsys):
    from repro.obs.export import jsonl_to_chrome_trace

    trace_path = tmp_path / "spans.jsonl"
    assert main(["sweep", "--rows", "1", "--latencies", "6",
                 f"--trace-out={trace_path}"]) == 0
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    assert jsonl_to_chrome_trace(str(trace_path), str(first)) > 0
    jsonl_to_chrome_trace(str(trace_path), str(second))
    assert first.read_bytes() == second.read_bytes()


def test_trace_out_requires_a_value(capsys):
    assert main(["sweep", "--trace-out"]) == 2
    assert "--trace-out expects a PATH" in capsys.readouterr().err


def test_trace_out_with_unknown_command_still_fails(capsys, tmp_path):
    trace_path = tmp_path / "spans.jsonl"
    assert main(["frobnicate", "--trace-out", str(trace_path)]) == 2
    assert not trace_path.exists()
