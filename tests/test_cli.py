"""Tests of the unified ``repro`` console script."""

import json

from repro.cli import main


def test_no_command_prints_usage(capsys):
    assert main([]) == 2
    out = capsys.readouterr().out
    assert "explore" in out and "verify" in out and "sweep" in out


def test_help_flag_prints_usage(capsys):
    assert main(["--help"]) == 0
    assert "usage: repro" in capsys.readouterr().out


def test_unknown_command_fails(capsys):
    assert main(["frobnicate"]) == 2
    err = capsys.readouterr().err
    assert "unknown command" in err


def test_verify_subcommand_forwards(capsys):
    # A tiny deterministic fuzz slice through the forwarding path.
    code = main(["verify", "run", "--iterations", "2", "--seed", "7",
                 "--oracles", "pareto-front", "--no-shrink"])
    assert code == 0


def test_explore_subcommand_forwards(capsys):
    code = main(["explore", "--workload", "fir", "--latencies", "6:8",
                 "--dense"])
    assert code == 0
    assert "frontier" in capsys.readouterr().out


def test_sweep_subcommand_runs_session(tmp_path, capsys):
    out_path = tmp_path / "metrics.json"
    code = main(["sweep", "--rows", "1", "--latencies", "6:7",
                 "--stats", "--json", str(out_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "Sweep: 2 point(s)" in out
    assert "SweepSession reuse" in out
    metrics = json.loads(out_path.read_text())
    assert len(metrics) == 2
    assert {m["point"]["name"] for m in metrics} == {"L6", "L7"}


def test_sweep_rejects_bad_grid(capsys):
    assert main(["sweep", "--latencies", "not-a-grid"]) == 2
    assert "LO:HI" in capsys.readouterr().err


def test_sweep_ii_range_pipelines_the_points(tmp_path, capsys):
    out_path = tmp_path / "metrics.json"
    code = main(["sweep", "--rows", "1", "--latencies", "8",
                 "--ii", "4:5", "--json", str(out_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "Sweep: 2 point(s)" in out
    metrics = json.loads(out_path.read_text())
    assert {m["point"]["name"] for m in metrics} == {"II4", "II5"}
    assert {m["point"]["pipeline_ii"] for m in metrics} == {4, 5}
    for m in metrics:
        assert m["slack_based"]["meets_timing"]


def test_sweep_rejects_bad_ii_range(capsys):
    assert main(["sweep", "--ii", "three"]) == 2
    assert "--ii expects LO:HI" in capsys.readouterr().err
    assert main(["sweep", "--ii", "5:2"]) == 2
    assert "LO <= HI" in capsys.readouterr().err
