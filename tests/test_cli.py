"""Tests of the unified ``repro`` console script."""

import json

from repro.cli import main


def test_no_command_prints_usage(capsys):
    assert main([]) == 2
    out = capsys.readouterr().out
    assert "explore" in out and "verify" in out and "sweep" in out


def test_help_flag_prints_usage(capsys):
    assert main(["--help"]) == 0
    assert "usage: repro" in capsys.readouterr().out


def test_unknown_command_fails(capsys):
    assert main(["frobnicate"]) == 2
    err = capsys.readouterr().err
    assert "unknown command" in err


def test_verify_subcommand_forwards(capsys):
    # A tiny deterministic fuzz slice through the forwarding path.
    code = main(["verify", "run", "--iterations", "2", "--seed", "7",
                 "--oracles", "pareto-front", "--no-shrink"])
    assert code == 0


def test_explore_subcommand_forwards(capsys):
    code = main(["explore", "--workload", "fir", "--latencies", "6:8",
                 "--dense"])
    assert code == 0
    assert "frontier" in capsys.readouterr().out


def test_sweep_subcommand_runs_session(tmp_path, capsys):
    out_path = tmp_path / "metrics.json"
    code = main(["sweep", "--rows", "1", "--latencies", "6:7",
                 "--stats", "--json", str(out_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "Sweep: 2 point(s)" in out
    assert "SweepSession reuse" in out
    metrics = json.loads(out_path.read_text())
    assert len(metrics) == 2
    assert {m["point"]["name"] for m in metrics} == {"L6", "L7"}


def test_sweep_rejects_bad_grid(capsys):
    assert main(["sweep", "--latencies", "not-a-grid"]) == 2
    assert "LO:HI" in capsys.readouterr().err
