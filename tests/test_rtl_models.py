"""Tests for the RTL-level models: datapath, area, timing, recovery, power, Verilog."""

import pytest

from repro.flows import conventional_flow, slack_based_flow
from repro.rtl.area import area_report
from repro.rtl.area_recovery import recover_area
from repro.rtl.datapath import build_datapath
from repro.rtl.power import power_report
from repro.rtl.timing import analyze_state_timing
from repro.rtl.verilog import emit_verilog
from repro.core.slack_scheduler import SlackScheduler


@pytest.fixture(scope="module")
def datapath(interpolation, library):
    result = SlackScheduler(interpolation, library, 1100.0).run()
    return build_datapath(interpolation, library, result.schedule)


def test_datapath_summary(datapath):
    summary = datapath.summary()
    assert summary["fu_instances"] == datapath.num_instances
    assert summary["states"] >= 3
    assert datapath.num_registers > 0


def test_area_report_components(datapath):
    report = area_report(datapath)
    assert report.fu_area > 0
    assert report.register_area > 0
    assert report.fsm_area > 0
    assert report.total == pytest.approx(
        report.fu_area + report.register_area + report.mux_area + report.fsm_area)
    breakdown = report.breakdown()
    assert breakdown["total"] == pytest.approx(report.total)


def test_state_timing_meets_clock(datapath):
    timing = analyze_state_timing(datapath)
    assert timing.meets_timing()
    assert timing.violations() == []
    assert timing.worst_state_slack >= 0
    for name, slack in timing.op_slack.items():
        assert slack >= -1e-6


def test_state_timing_detects_violations(datapath, library):
    # Force the fastest-graded multiplier instance to the slowest grade: some
    # state must now violate the 1100 ps clock.
    from repro.ir.operations import OpKind
    instance = min(
        (i for i in datapath.binding.instances if i.class_key[0] == "mul"),
        key=lambda i: i.variant.delay,
    )
    original = instance.variant
    instance.variant = library.class_for(OpKind.MUL, 8).slowest
    try:
        timing = analyze_state_timing(datapath)
        # Two chained multiplications at 610 ps exceed 1100 ps.
        if any(len(datapath.schedule.ops_on_edge(e)) > 1
               for e in datapath.schedule.used_edges):
            assert timing.worst_state_slack <= 1100.0
    finally:
        instance.variant = original


def test_area_recovery_never_increases_area_or_breaks_timing(interpolation, library):
    flow = conventional_flow(interpolation, library, clock_period=1100.0,
                             area_recovery=False)
    datapath = flow.datapath
    before = datapath.binding.total_fu_area()
    result = recover_area(datapath)
    after = datapath.binding.total_fu_area()
    assert after <= before
    assert result.area_saved == pytest.approx(before - after)
    assert analyze_state_timing(datapath).meets_timing()


def test_power_report_scales_with_latency(library):
    from repro.workloads import idct_design
    fast = conventional_flow(idct_design(latency=8, rows=1, clock_period=1500.0),
                             library, clock_period=1500.0)
    slow = conventional_flow(idct_design(latency=24, rows=1, clock_period=1500.0),
                             library, clock_period=1500.0)
    assert fast.power.total > 0 and slow.power.total > 0
    assert fast.power.iteration_time < slow.power.iteration_time
    assert fast.throughput > slow.throughput


def test_power_activity_scaling(datapath):
    base = power_report(datapath, activity=1.0)
    half = power_report(datapath, activity=0.5)
    assert half.dynamic < base.dynamic
    assert half.leakage == pytest.approx(base.leakage)


def test_verilog_emission_contains_structure(interpolation, library):
    flow = slack_based_flow(interpolation, library, clock_period=1100.0)
    text = emit_verilog(flow.datapath)
    assert text.startswith("//")
    assert "module interpolation_u4" in text
    assert "endmodule" in text
    assert "state" in text
    assert "fx_data" in text
    # Every functional-unit instance is documented in the netlist.
    for instance in flow.datapath.binding.instances:
        assert instance.name in text
