"""Tests for operation spans (paper Section IV, Definition 4)."""

import pytest

from repro.core.latency import LatencyAnalysis
from repro.core.opspan import OperationSpans
from repro.errors import TimingError


@pytest.fixture(scope="module")
def spans(resizer_main):
    return OperationSpans(resizer_main)


def test_fixed_io_operations_have_singleton_spans(spans):
    assert spans.span("rd_a").edges == ("e1",)
    assert spans.span("rd_b").edges == ("e5",)
    assert spans.span("wr").edges == ("e7",)
    assert spans.span("wr").is_fixed


def test_paper_early_edges(spans):
    """Early edges quoted in the paper: div starts at e1, mul at e5, mux at e6."""
    assert spans.early("add") == "e1"
    assert spans.early("div") == "e1"
    assert spans.early("sub") == "e1"
    assert spans.early("mul") == "e5"
    assert spans.early("mux") == "e6"
    assert spans.early("wr") == "e7"


def test_paper_div_span_is_contained(spans):
    """The paper's span(div) = {e1, e2, e4} must be legal in our semantics."""
    for edge in ("e1", "e2", "e4"):
        assert edge in spans.span("div")
    # The else branch is never legal for div.
    assert "e3" not in spans.span("div")
    assert "e5" not in spans.span("div")


def test_mux_cannot_move_into_a_branch(spans):
    info = spans.span("mux")
    assert info.early == "e6"
    for edge in ("e2", "e3", "e4", "e5"):
        assert edge not in info


def test_strict_io_successors_reproduce_table3_spans(resizer_main):
    strict = OperationSpans(resizer_main, strict_io_successors=True)
    assert strict.span("mux").edges == ("e6",)
    assert strict.late("mux") == "e6"


def test_default_mode_allows_chaining_into_the_write(resizer_main):
    relaxed = OperationSpans(resizer_main, strict_io_successors=False)
    assert relaxed.late("mux") == "e7"


def test_mobility_counts_state_crossings(spans):
    assert spans.mobility("rd_a") == 0
    assert spans.mobility("div") >= 1
    assert spans.mobility("mux") >= 0


def test_branch_condition_cannot_be_postponed(resizer_full):
    spans = OperationSpans(resizer_full)
    assert spans.late("cmp") == "e1"
    assert spans.span("cmp").edges == ("e1",)


def test_pinned_operations_collapse_to_their_edge(resizer_main):
    spans = OperationSpans(resizer_main, pinned={"div": "e4"})
    assert spans.span("div").edges == ("e4",)
    assert spans.early("div") == "e4"
    assert spans.late("div") == "e4"


def test_not_before_floor_restricts_unscheduled_ops(resizer_main):
    latency = LatencyAnalysis(resizer_main.cfg)
    pinned = {"rd_a": "e1", "add": "e1"}
    spans = OperationSpans(resizer_main, latency=latency, pinned=pinned,
                           not_before="e4")
    # div can no longer be hoisted to e1/e2: the scheduler has passed them.
    assert latency.edge_order(spans.early("div")) >= latency.edge_order("e4")


def test_not_before_keeps_fixed_ops_on_their_birth_edge(resizer_main):
    # Fixed I/O operations are pinned by nature: the floor never moves them.
    spans = OperationSpans(resizer_main, not_before="e6")
    assert spans.span("rd_a").edges == ("e1",)
    assert spans.early("div") == "e6"


def test_unknown_operation_raises(resizer_main):
    with pytest.raises(TimingError):
        OperationSpans(resizer_main).span("not_an_op")


def test_linear_design_spans_cover_all_states(interpolation):
    spans = OperationSpans(interpolation)
    assert spans.span("mul_x_0").edges == ("e1", "e2", "e3")
    assert spans.span("add_sum_3").edges[-1] == "e3"
    assert spans.span("write_x").edges == ("e3",)
