"""Tests of the metrics registry and the adopted ad-hoc counters."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    cache_stats,
    counter,
    histogram,
    registry,
    snapshot,
)


# -- metric primitives -------------------------------------------------------------


def test_counter_gauge_histogram_semantics():
    reg = MetricsRegistry()
    c = reg.counter("c")
    c.inc()
    c.inc(4)
    assert c.value == 5
    g = reg.gauge("g")
    g.set(2.5)
    assert g.value == 2.5
    h = reg.histogram("h")
    for value in (1.0, 3.0, 2.0):
        h.observe(value)
    assert h.summary() == {"count": 3, "total": 6.0, "mean": 2.0,
                           "min": 1.0, "max": 3.0}


def test_creation_is_idempotent_and_shared():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    assert reg.gauge("y") is reg.gauge("y")
    assert reg.histogram("z") is reg.histogram("z")
    assert isinstance(reg.counter("x"), Counter)
    assert isinstance(reg.gauge("y"), Gauge)
    assert isinstance(reg.histogram("z"), Histogram)


def test_reset_zeroes_owned_metrics():
    reg = MetricsRegistry()
    reg.counter("c").inc(3)
    reg.histogram("h").observe(1.0)
    reg.reset()
    assert reg.counter("c").value == 0
    assert reg.histogram("h").summary()["count"] == 0


def test_snapshot_is_json_safe_and_sorted():
    import json

    reg = MetricsRegistry()
    reg.counter("b").inc()
    reg.counter("a").inc(2)
    reg.gauge("g").set(1.0)
    reg.histogram("h").observe(0.5)
    snap = reg.snapshot()
    json.dumps(snap)  # JSON-safe by construction
    assert list(snap["counters"]) == ["a", "b"]
    assert snap["counters"]["a"] == 2
    assert snap["histograms"]["h"]["count"] == 1


def test_probe_errors_are_captured_not_raised():
    reg = MetricsRegistry()

    def bad_probe():
        raise RuntimeError("probe exploded")

    reg.register_probe("bad", bad_probe)
    reg.register_probe("good", lambda: {"value": 7})
    snap = reg.snapshot()
    assert snap["probes"]["good"] == {"value": 7}
    assert "RuntimeError" in snap["probes"]["bad"]["error"]


# -- process-wide registry + builtin probes ----------------------------------------


def test_module_level_registry_is_shared():
    counter("test.shared").inc()
    assert registry().counter("test.shared").value >= 1
    assert counter("test.shared") is registry().counter("test.shared")


def test_snapshot_includes_builtin_cache_probes():
    snap = snapshot()
    assert "analysis_cache" in snap["probes"]
    assert "characterization" in snap["probes"]


def test_cache_stats_covers_every_cache_layer(library):
    from repro.flows.dse import DesignPoint, evaluate_point
    from repro.workloads import IDCTPointFactory

    point = DesignPoint(name="CS", latency=8, clock_period=1500.0)
    evaluate_point(IDCTPointFactory(rows=1), library, point)

    stats = cache_stats()
    assert set(stats) == {"analysis_cache", "delta_seeds", "characterization",
                          "jsonl_stores", "serve"}
    assert {"hits", "misses", "puts", "compactions"} <= set(stats["serve"])
    assert {"skipped_lines", "appended_records"} \
        <= set(stats["jsonl_stores"])
    # The analysis-cache probe pulls the public cache_info() tables.
    for table in ("artifacts", "spans", "sequential_slack"):
        assert {"hits", "misses"} <= set(stats["analysis_cache"][table])
    assert {"hits", "misses", "inserts"} <= set(stats["delta_seeds"])
    info = stats["characterization"]
    assert info["size"] >= 1
    # Building the tsmc90 library exercised the memo at least once.
    assert info["hits"] + info["misses"] >= info["size"]


def test_characterization_cache_info_counts_hits():
    from repro.ir.operations import OpKind
    from repro.lib.characterize import (
        characterization_cache_info,
        characterize_class,
        default_kind_models,
    )

    model = default_kind_models()[OpKind.ADD]
    before = characterization_cache_info()
    first = characterize_class(OpKind.ADD, 37, model)
    again = characterize_class(OpKind.ADD, 37, model)
    after = characterization_cache_info()
    assert again is first  # memoized instance is shared
    assert after["hits"] >= before["hits"] + 1
    assert after["misses"] >= before["misses"]
    assert after["size"] >= before["size"]


# -- adopted ad-hoc counters keep their public accessors ---------------------------


def test_sweep_counters_twin_the_session_stats(library):
    from repro.flows.dse import DesignPoint
    from repro.flows.sweep import SweepSession
    from repro.workloads import IDCTPointFactory

    before = {name: counter(name).value
              for name in ("sweep.points_evaluated", "sweep.full_evaluations",
                           "sweep.delta_points")}
    session = SweepSession(IDCTPointFactory(rows=1), library)
    points = [DesignPoint(name=f"T{lat}", latency=lat, clock_period=1500.0)
              for lat in (6, 8)]
    session.run(points)
    # The public accessor is untouched ...
    assert session.stats.points_evaluated == 2
    assert session.stats.full_evaluations + session.stats.delta_points == 2
    # ... and the registry twins advanced by exactly the same amounts.
    assert counter("sweep.points_evaluated").value \
        == before["sweep.points_evaluated"] + 2
    assert (counter("sweep.full_evaluations").value
            + counter("sweep.delta_points").value) \
        == (before["sweep.full_evaluations"]
            + before["sweep.delta_points"] + 2)


def test_relaxation_counters_twin_the_log(library):
    from repro.flows.conventional import conventional_flow
    from repro.workloads import IDCTPointFactory
    from repro.flows.dse import DesignPoint

    before = counter("relaxation.attempts").value
    design = IDCTPointFactory(rows=1)(
        DesignPoint(name="R", latency=8, clock_period=1500.0))
    result = conventional_flow(design, library, clock_period=1500.0)
    attempts = result.details["relaxation_attempts"]
    assert attempts >= 1
    assert counter("relaxation.attempts").value >= before + attempts


def test_oracle_counters_and_timing_histograms(library):
    from repro.verify.oracles import ORACLES
    from repro.verify.runner import run_oracle_guarded
    from repro.verify.scenarios import scenario_stream

    oracle = ORACLES["sequential-slack"]
    (_, spec), = list(scenario_stream(3, 1))
    before_pass = counter("oracle.pass").value
    before_count = histogram("oracle.sequential-slack.seconds").count
    outcome = run_oracle_guarded(oracle, spec, library)
    assert outcome.ok
    assert counter("oracle.pass").value == before_pass + 1
    hist = histogram("oracle.sequential-slack.seconds")
    assert hist.count == before_count + 1
    assert hist.total > 0.0


def test_oracle_crash_is_counted(library):
    from repro.verify.oracles import Oracle
    from repro.verify.runner import run_oracle_guarded
    from repro.verify.scenarios import scenario_stream

    def exploding_check(spec, lib):
        raise IndexError("deep engine crash")

    exploding = Oracle(name="exploding-test-oracle",
                       description="always crashes", check=exploding_check)
    (_, spec), = list(scenario_stream(3, 1))
    before = counter("oracle.crash").value
    outcome = run_oracle_guarded(exploding, spec, library)
    assert not outcome.ok and "crash" in outcome.details
    assert counter("oracle.crash").value == before + 1
