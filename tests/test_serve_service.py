"""Contract tests of :class:`repro.serve.service.DSEService`.

Everything except the byte-identity property tests runs against the fakes
in :mod:`repro.serve.fakes` — no real flows, no sockets, no sleeping
beyond the sub-second timeout scenario.  The fake evaluator's call log is
the ground truth for "flow evaluations actually performed", which is what
the memoization guarantees are asserted against.
"""

import json
import time

import pytest

from repro.errors import ReproError
from repro.serve.fakes import (
    FakeEvaluator,
    HangingEvaluator,
    explore_payload,
    submit_design_payload,
    sweep_payload,
)
from repro.serve.jobs import JobSpec
from repro.serve.retry import RetryPolicy
from repro.serve.service import DSEService, JobStateError, UnknownJobError


def _service(tmp_path=None, **kwargs):
    if tmp_path is not None:
        kwargs.setdefault("store_path", str(tmp_path / "store.jsonl"))
        kwargs.setdefault("queue_path", str(tmp_path / "queue.jsonl"))
    kwargs.setdefault("evaluator", FakeEvaluator())
    kwargs.setdefault("library", object())  # fakes never touch the library
    return DSEService(**kwargs)


def _wait_terminal(service, job_id, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = service.status(job_id)
        if status["state"] in ("done", "failed", "cancelled", "timeout"):
            return status
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} still "
                         f"{service.status(job_id)['state']} after {timeout}s")


class TestEndpoints:
    def test_submit_run_result_round_trip(self):
        service = _service()
        receipt = service.submit({"kind": "sweep",
                                  "payload": sweep_payload()})
        assert receipt["state"] == "pending"
        assert service.run_pending() == 1

        status = service.status(receipt["job_id"])
        assert status["state"] == "done"
        assert status["fingerprint"] == receipt["fingerprint"]

        result = service.result(receipt["job_id"])["result"]
        assert result["evaluations"] == 2 and result["cache_hits"] == 0
        assert [p["point"]["latency"] for p in result["points"]] == [6, 8]

    def test_unknown_job_raises_unknown_job_error(self):
        service = _service()
        for endpoint in (service.status, service.result, service.cancel):
            with pytest.raises(UnknownJobError):
                endpoint("job-424242")

    def test_result_of_unfinished_job_raises_state_error(self):
        service = _service()
        receipt = service.submit(JobSpec("sweep", sweep_payload()))
        with pytest.raises(JobStateError):
            service.result(receipt["job_id"])

    def test_cancel_pending_but_not_finished(self):
        service = _service()
        receipt = service.submit(JobSpec("sweep", sweep_payload()))
        assert service.cancel(receipt["job_id"])["state"] == "cancelled"
        assert service.run_pending() == 0  # nothing left to claim

        finished = service.submit(JobSpec("sweep", sweep_payload()))
        service.run_pending()
        with pytest.raises(JobStateError):
            service.cancel(finished["job_id"])

    def test_malformed_submission_rejected_eagerly(self):
        service = _service()
        with pytest.raises(ReproError):
            service.submit({"kind": "sweep",
                            "payload": {"workload": "no-such-kernel",
                                        "latencies": [6]}})
        assert len(service.queue) == 0  # nothing was enqueued

    def test_stats_reports_queue_cache_and_policy(self):
        service = _service()
        service.submit(JobSpec("sweep", sweep_payload()))
        service.run_pending()
        stats = service.stats()
        assert stats["jobs"] == {"done": 1}
        assert stats["cache"]["misses"] == 2
        assert stats["cache"]["puts"] == 2
        assert stats["retry"]["max_attempts"] >= 1
        json.dumps(stats)

    def test_endpoint_latency_histograms_advance(self):
        from repro.obs.metrics import histogram

        before = histogram("serve.endpoint.submit.seconds").count
        service = _service()
        service.submit(JobSpec("sweep", sweep_payload()))
        assert histogram("serve.endpoint.submit.seconds").count == before + 1


class TestMemoization:
    def test_warm_resubmit_performs_zero_evaluations(self, tmp_path):
        # The ISSUE acceptance criterion: a repeated submission whose
        # fingerprint is already evaluated completes with zero new flow
        # evaluations, asserted via the evaluator call log AND the
        # service's own counters.
        fake = FakeEvaluator()
        cold = _service(tmp_path, evaluator=fake)
        receipt = cold.submit(JobSpec("sweep", sweep_payload()))
        cold.run_pending()
        assert len(fake.calls) == 2

        warm_fake = FakeEvaluator()
        warm = _service(tmp_path, evaluator=warm_fake)
        again = warm.submit(JobSpec("sweep", sweep_payload()))
        assert again["fingerprint"] == receipt["fingerprint"]
        warm.run_pending()

        result = warm.result(again["job_id"])["result"]
        assert warm_fake.calls == []  # zero new flow evaluations
        assert result["evaluations"] == 0
        assert result["cache_hits"] == 2
        assert warm.cache.hits == 2 and warm.cache.misses == 0

    def test_warm_results_are_byte_identical_to_cold(self, tmp_path):
        cold = _service(tmp_path)
        first = cold.submit(JobSpec("sweep", sweep_payload()))
        cold.run_pending()
        cold_points = cold.result(first["job_id"])["result"]["points"]

        warm = _service(tmp_path, evaluator=FakeEvaluator())
        second = warm.submit(JobSpec("sweep", sweep_payload()))
        warm.run_pending()
        warm_points = warm.result(second["job_id"])["result"]["points"]
        assert json.dumps(warm_points, sort_keys=True) \
            == json.dumps(cold_points, sort_keys=True)

    def test_cache_is_shared_across_tenants_and_kinds(self):
        # One tenant's sweep warms the other tenant's scenario-free sweep:
        # the memo key is the work, not the submitter.
        fake = FakeEvaluator()
        service = _service(evaluator=fake)
        a = service.submit(JobSpec("sweep", sweep_payload(), tenant="team-a"))
        b = service.submit(JobSpec("sweep", sweep_payload(), tenant="team-b"))
        service.run_pending()
        assert len(fake.calls) == 2  # team-b's job was served from memo
        assert service.result(b["job_id"])["result"]["cache_hits"] == 2
        assert service.result(a["job_id"])["result"]["tenant"] == "team-a"

    def test_partial_overlap_only_evaluates_the_new_points(self):
        fake = FakeEvaluator()
        service = _service(evaluator=fake)
        service.submit(JobSpec("sweep", sweep_payload(latencies=(6, 8))))
        overlap = service.submit(
            JobSpec("sweep", sweep_payload(latencies=(8, 10))))
        service.run_pending()
        result = service.result(overlap["job_id"])["result"]
        assert result["cache_hits"] == 1 and result["evaluations"] == 1
        assert fake.calls.count("idct_L8_T1500") == 1

    def test_explore_jobs_share_the_same_store(self):
        fake = FakeEvaluator()
        service = _service(evaluator=fake)
        sweep = service.submit(JobSpec(
            "sweep", sweep_payload(latencies=tuple(range(6, 17)))))
        service.run_pending()
        swept = len(fake.calls)
        assert swept == 11

        explore = service.submit(JobSpec("explore", explore_payload(
            latencies=(6, 16))))
        service.run_pending()
        result = service.result(explore["job_id"])["result"]
        assert result["kind"] == "explore"
        assert result["front"]  # a real Pareto front came back
        # Every point the exploration touched was already in the store.
        assert len(fake.calls) == swept
        assert result["evaluations"] == 0
        assert service.result(sweep["job_id"])["result"]["evaluations"] == 11


class TestRetryAndTimeout:
    def test_transient_failures_are_retried_to_success(self):
        fake = FakeEvaluator(fail_times=1)
        service = _service(evaluator=fake,
                           retry=RetryPolicy(max_attempts=3,
                                             backoff_seconds=0.0))
        receipt = service.submit(JobSpec("sweep", sweep_payload()))
        service.run_pending()
        status = service.status(receipt["job_id"])
        assert status["state"] == "done"
        assert status["attempts"] == 2

    def test_exhausted_retries_yield_structured_failure(self):
        fake = FakeEvaluator(fail_times=99)
        service = _service(evaluator=fake,
                           retry=RetryPolicy(max_attempts=2,
                                             backoff_seconds=0.0))
        receipt = service.submit(JobSpec("sweep", sweep_payload()))
        service.run_pending()
        status = service.status(receipt["job_id"])
        assert status["state"] == "failed"
        assert status["failure"]["kind"] == "error"
        assert "injected failure" in status["failure"]["error"]
        assert len(status["failure"]["attempts"]) == 2
        with pytest.raises(JobStateError):
            service.result(receipt["job_id"])

    def test_deadline_returns_structured_timeout_without_stalling(self):
        # The ISSUE acceptance criterion: a hanging job is cut at the
        # retry deadline with a structured timeout failure, and the SAME
        # worker thread goes on to complete the next job — the pool never
        # stalls behind the hang.
        hanging = HangingEvaluator(hang_seconds=30.0)
        fake = FakeEvaluator()

        def evaluator(factory, library, point, margin_fraction, scheduling):
            if point.latency == 6:
                return hanging(factory, library, point, margin_fraction,
                               scheduling)
            return fake(factory, library, point, margin_fraction, scheduling)

        service = _service(
            evaluator=evaluator,
            retry=RetryPolicy(max_attempts=3, deadline_seconds=0.2))
        hung = service.submit(JobSpec("sweep", sweep_payload(latencies=(6,))))
        healthy = service.submit(
            JobSpec("sweep", sweep_payload(latencies=(8,))))
        service.start_workers(1)
        try:
            timed_out = _wait_terminal(service, hung["job_id"])
            completed = _wait_terminal(service, healthy["job_id"])
        finally:
            service.stop_workers()
            hanging.release()

        assert timed_out["state"] == "timeout"
        assert timed_out["failure"]["kind"] == "timeout"
        assert timed_out["attempts"] == 1  # timeouts are terminal, no retry
        assert completed["state"] == "done"
        assert fake.calls == ["idct_L8_T1500"]

    def test_run_pending_respects_max_jobs(self):
        service = _service()
        for _ in range(3):
            service.submit(JobSpec("sweep", sweep_payload()))
        assert service.run_pending(max_jobs=2) == 2
        assert service.queue.pending_count() == 1
        assert service.run_pending() == 1


class TestWorkerPool:
    def test_workers_drain_the_queue_concurrently(self):
        fake = FakeEvaluator()
        service = _service(evaluator=fake)
        receipts = [service.submit(JobSpec("sweep",
                                           sweep_payload(latencies=(lat,))))
                    for lat in (6, 8, 10, 12)]
        service.start_workers(2)
        try:
            for receipt in receipts:
                assert _wait_terminal(service,
                                      receipt["job_id"])["state"] == "done"
        finally:
            service.stop_workers()
        assert sorted(fake.calls) == sorted(
            f"idct_L{lat}_T1500" for lat in (6, 8, 10, 12))

    def test_stop_workers_clears_the_pool(self):
        service = _service()
        service.start_workers(2)
        assert service.stats()["workers"] == 2
        service.stop_workers()
        assert service.stats()["workers"] == 0


class TestServedEqualsDirectProperty:
    """The tentpole property: a served evaluation is byte-identical to a
    direct :func:`repro.flows.dse.evaluate_point` call — on the cold path
    (the service actually ran the flows) and on the memoized path (the
    result came back from the shared store)."""

    def test_submit_design_matches_direct_evaluation(self, tmp_path, library):
        from repro.flows.dse import evaluate_point
        from repro.verify.scenarios import ScenarioSpec

        payload = submit_design_payload(seed=11, max_segments=2)
        scenario = ScenarioSpec.from_dict(payload)
        direct = evaluate_point(
            scenario.factory(), library, scenario.point(name=scenario.name),
            margin_fraction=scenario.margin_fraction,
            scheduling="block").metrics()
        direct_bytes = json.dumps(direct, sort_keys=True)

        cold = DSEService(library=library,
                          store_path=str(tmp_path / "store.jsonl"))
        receipt = cold.submit(JobSpec("submit-design", payload))
        cold.run_pending()
        cold_result = cold.result(receipt["job_id"])["result"]
        assert cold_result["evaluations"] == 1
        assert json.dumps(cold_result["points"][0], sort_keys=True) \
            == direct_bytes

        warm = DSEService(library=library,
                          store_path=str(tmp_path / "store.jsonl"))
        again = warm.submit(JobSpec("submit-design", payload))
        assert again["fingerprint"] == receipt["fingerprint"]
        warm.run_pending()
        warm_result = warm.result(again["job_id"])["result"]
        assert warm_result["evaluations"] == 0
        assert warm_result["cache_hits"] == 1
        assert json.dumps(warm_result["points"][0], sort_keys=True) \
            == direct_bytes
