"""Tests of the ``repro serve`` command line (in-process, via ``main``)."""

import json

import pytest

from repro.serve.cli import build_parser, main
from repro.serve.fakes import sweep_payload


def _write_job(tmp_path, payload=None, tenant="cli"):
    job = {"kind": "sweep",
           "payload": payload or sweep_payload(latencies=(6,)),
           "tenant": tenant}
    path = tmp_path / "job.json"
    path.write_text(json.dumps(job))
    return str(path)


def _paths(tmp_path):
    return str(tmp_path / "queue.jsonl"), str(tmp_path / "store.jsonl")


class TestSubmitRunStatusResult:
    def test_full_cli_round_trip(self, tmp_path, capsys):
        queue, store = _paths(tmp_path)
        job = _write_job(tmp_path)

        assert main(["submit", "--queue", queue, "--job", job]) == 0
        receipt = json.loads(capsys.readouterr().out)
        assert receipt["state"] == "pending"
        job_id = receipt["job_id"]

        assert main(["run", "--queue", queue, "--store", store]) == 0
        assert "executed 1 job(s)" in capsys.readouterr().out

        assert main(["status", job_id, "--queue", queue]) == 0
        assert json.loads(capsys.readouterr().out)["state"] == "done"

        assert main(["result", job_id, "--queue", queue]) == 0
        result = json.loads(capsys.readouterr().out)["result"]
        assert result["evaluations"] == 1
        assert result["points"][0]["point"]["latency"] == 6

        assert main(["stats", "--queue", queue, "--store", store]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["jobs"] == {"done": 1}

    def test_warm_rerun_uses_the_store(self, tmp_path, capsys):
        queue, store = _paths(tmp_path)
        job = _write_job(tmp_path)
        main(["submit", "--queue", queue, "--job", job])
        main(["run", "--queue", queue, "--store", store])
        capsys.readouterr()

        main(["submit", "--queue", queue, "--job", job])
        warm_id = json.loads(capsys.readouterr().out)["job_id"]
        main(["run", "--queue", queue, "--store", store])
        capsys.readouterr()
        main(["result", warm_id, "--queue", queue])
        result = json.loads(capsys.readouterr().out)["result"]
        assert result["evaluations"] == 0 and result["cache_hits"] == 1

    def test_malformed_job_file_exits_2(self, tmp_path, capsys):
        queue, _ = _paths(tmp_path)
        bad = _write_job(tmp_path,
                         payload={"workload": "no-such-kernel",
                                  "latencies": [6]})
        assert main(["submit", "--queue", queue, "--job", bad]) == 2
        assert "repro serve:" in capsys.readouterr().err

    def test_status_of_unknown_job_exits_2(self, tmp_path, capsys):
        queue, _ = _paths(tmp_path)
        job = _write_job(tmp_path)
        main(["submit", "--queue", queue, "--job", job])
        capsys.readouterr()
        assert main(["status", "job-999999", "--queue", queue]) == 2

    def test_run_reports_failures_with_exit_1(self, tmp_path, capsys,
                                              monkeypatch):
        # Force the job body to fail: deadline of 0 is rejected by the
        # policy, so instead inject an evaluator failure via a store path
        # that is a directory (ReproError inside the job -> failed state).
        from repro.serve import cli as serve_cli
        from repro.serve.fakes import FakeEvaluator

        queue, store = _paths(tmp_path)
        job = _write_job(tmp_path)
        main(["submit", "--queue", queue, "--job", job])
        capsys.readouterr()

        original = serve_cli._service

        def failing_service(args, evaluator=None, retry=None):
            return original(args, evaluator=FakeEvaluator(fail_times=99),
                            retry=retry)

        monkeypatch.setattr(serve_cli, "_service", failing_service)
        assert main(["run", "--queue", queue, "--store", store]) == 1
        assert "failed=1" in capsys.readouterr().out


class TestSmoke:
    def test_smoke_passes_and_keeps_artifacts(self, tmp_path, capsys):
        keep = str(tmp_path / "smoke")
        assert main(["smoke", "--keep", keep]) == 0
        out = capsys.readouterr().out
        assert "serve smoke ok" in out
        assert (tmp_path / "smoke" / "store.jsonl").exists()
        assert (tmp_path / "smoke" / "queue.jsonl").exists()


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_top_level_cli_routes_serve(self, capsys):
        from repro.cli import main as repro_main

        with pytest.raises(SystemExit):
            repro_main(["serve", "--help"])
        assert "submit-design" in capsys.readouterr().out
