"""Tests for the Schedule container and resource allocation."""

import pytest

from repro.errors import SchedulingError
from repro.core.opspan import OperationSpans
from repro.sched.allocation import Allocation, minimal_allocation, resource_class_key
from repro.sched.schedule import Schedule


def test_assign_and_query(interpolation):
    schedule = Schedule(interpolation, 1100.0)
    schedule.assign("mul_x_0", "e1", 0, 0.0, 430.0)
    assert schedule.is_scheduled("mul_x_0")
    assert schedule.edge_of("mul_x_0") == "e1"
    assert schedule.step_of("mul_x_0") == 0
    assert schedule.item("mul_x_0").delay == pytest.approx(430.0)
    assert not schedule.is_complete()
    assert schedule.num_scheduled() == 1
    assert [o.op for o in schedule.ops_on_edge("e1")] == ["mul_x_0"]


def test_double_assignment_rejected(interpolation):
    schedule = Schedule(interpolation, 1100.0)
    schedule.assign("mul_x_0", "e1", 0, 0.0, 430.0)
    with pytest.raises(SchedulingError):
        schedule.assign("mul_x_0", "e2", 1, 0.0, 430.0)


def test_unknown_names_rejected(interpolation):
    schedule = Schedule(interpolation, 1100.0)
    with pytest.raises(SchedulingError):
        schedule.assign("nope", "e1", 0, 0.0, 1.0)
    with pytest.raises(SchedulingError):
        schedule.assign("mul_x_0", "nope", 0, 0.0, 1.0)
    with pytest.raises(SchedulingError):
        schedule.item("mul_x_0")


def test_unassign(interpolation):
    schedule = Schedule(interpolation, 1100.0)
    schedule.assign("mul_x_0", "e1", 0, 0.0, 430.0)
    schedule.unassign("mul_x_0")
    assert not schedule.is_scheduled("mul_x_0")
    assert schedule.ops_on_edge("e1") == []


def test_validate_detects_dependency_violation(interpolation):
    schedule = Schedule(interpolation, 1100.0)
    # mul_x_1 depends on mul_x_0; scheduling it earlier must be reported.
    schedule.assign("mul_x_0", "e2", 1, 0.0, 430.0)
    schedule.assign("mul_x_1", "e1", 0, 0.0, 430.0)
    problems = schedule.validate()
    assert any("scheduled before" in p for p in problems)


def test_validate_detects_chaining_violation(interpolation):
    schedule = Schedule(interpolation, 1100.0)
    schedule.assign("mul_x_0", "e1", 0, 0.0, 430.0)
    schedule.assign("mul_x_1", "e1", 0, 100.0, 530.0)  # starts before producer ends
    problems = schedule.validate()
    assert any("finishes at" in p or "before" in p for p in problems)


def test_validate_detects_clock_overflow(interpolation):
    schedule = Schedule(interpolation, 1100.0)
    schedule.assign("mul_x_0", "e1", 0, 900.0, 1400.0)
    problems = schedule.validate()
    assert any("beyond the clock period" in p for p in problems)


def test_describe_and_utilisation(interpolation):
    schedule = Schedule(interpolation, 1100.0)
    schedule.assign("mul_x_0", "e1", 0, 0.0, 430.0)
    text = schedule.describe()
    assert "mul_x_0" in text and "step 0" in text
    assert schedule.state_utilisation()["e1"] == pytest.approx(430.0)
    assert schedule.latency_steps() == 1


def test_resource_class_key(interpolation, library):
    mul = interpolation.dfg.op("mul_x_0")
    write = interpolation.dfg.op("write_x")
    assert resource_class_key(mul, library) == ("mul", 8)
    assert resource_class_key(write, library) is None


def test_minimal_allocation_counts(interpolation, library):
    allocation = minimal_allocation(interpolation, library)
    # 7 multiplications over 3 usable states -> at least 3 multipliers;
    # 4 additions over 3 states -> at least 2 adders.
    assert allocation.limits[("mul", 8)] == 3
    assert allocation.limits[("add", 16)] == 2


def test_minimal_allocation_pipelined_uses_ii_slots(interpolation, library):
    spans = OperationSpans(interpolation)
    allocation = minimal_allocation(interpolation, library, spans=spans, pipeline_ii=1)
    # With II=1 every operation of a class needs its own instance.
    assert allocation.limits[("mul", 8)] == 7
    assert allocation.limits[("add", 16)] == 4


def test_allocation_helpers():
    allocation = Allocation()
    assert allocation.limit(None) > 10 ** 6
    assert allocation.limit(("mul", 8)) == 0
    allocation.add(("mul", 8))
    allocation.add(("mul", 8), 2)
    assert allocation.limit(("mul", 8)) == 3
    allocation.ensure_at_least(("mul", 8), 2)
    assert allocation.limit(("mul", 8)) == 3
    allocation.ensure_at_least(("add", 16), 2)
    assert allocation.limit(("add", 16)) == 2
    assert allocation.total_instances() == 5
    clone = allocation.copy()
    clone.add(("mul", 8))
    assert allocation.limit(("mul", 8)) == 3
    assert "mul/8x3" in allocation.describe()
