"""Tests for the slack-guided scheduler (paper Fig. 8)."""

import pytest

from repro.core.slack_scheduler import SlackScheduler
from repro.ir.operations import OpKind


@pytest.fixture(scope="module")
def interpolation_result(interpolation, library):
    return SlackScheduler(interpolation, library, 1100.0).run()


def test_schedule_is_complete_and_valid(interpolation, interpolation_result):
    schedule = interpolation_result.schedule
    assert schedule.is_complete()
    assert schedule.validate() == []
    assert schedule.latency_steps() <= 3


def test_every_synthesizable_operation_has_a_variant(interpolation,
                                                     interpolation_result):
    for op in interpolation.dfg.operations:
        if op.is_synthesizable:
            variant = interpolation_result.variant_of(op.name)
            assert variant is not None
            assert variant.kind is op.kind


def test_budgeting_slows_noncritical_operations(interpolation, library,
                                                interpolation_result):
    """The whole point: not every operation should be on the fastest grade."""
    grades = [interpolation_result.variant_of(op.name).grade
              for op in interpolation.dfg.operations if op.is_synthesizable]
    assert any(grade > 0 for grade in grades)
    # The selected multipliers must be cheaper in total than all-fastest.
    mul_area = sum(interpolation_result.variant_of(op.name).area
                   for op in interpolation.dfg.operations
                   if op.kind is OpKind.MUL)
    fastest_area = sum(library.fastest_variant(op).area
                       for op in interpolation.dfg.operations
                       if op.kind is OpKind.MUL)
    assert mul_area < fastest_area


def test_rebudgeting_happens_and_is_recorded(interpolation_result):
    assert interpolation_result.rebudget_count >= 1
    assert interpolation_result.initial_budget.feasible


def test_rebudgeting_can_be_disabled(interpolation, library):
    scheduler = SlackScheduler(interpolation, library, 1100.0,
                               rebudget_every_edge=False)
    result = scheduler.run()
    assert result.schedule.is_complete()
    assert result.rebudget_count == 0


def test_resizer_with_control_flow_schedules(resizer_full, library):
    result = SlackScheduler(resizer_full, library, 6000.0).run()
    schedule = result.schedule
    assert schedule.is_complete()
    assert schedule.validate() == []
    # Fixed I/O operations stay on their protocol edges.
    assert schedule.edge_of("rd_a") == "e1"
    assert schedule.edge_of("rd_b") == "e5"
    assert schedule.edge_of("wr") == "e7"
    # The branch condition is resolved before the fork.
    assert schedule.edge_of("cmp") == "e1"


def test_allocation_respects_schedule(interpolation, library, interpolation_result):
    schedule = interpolation_result.schedule
    limits = interpolation_result.allocation.limits
    per_edge = {}
    for item in schedule.items:
        op = interpolation.dfg.op(item.op)
        if op.kind is not OpKind.MUL:
            continue
        per_edge[item.edge] = per_edge.get(item.edge, 0) + 1
    assert per_edge
    for count in per_edge.values():
        assert count <= limits[("mul", 8)]
