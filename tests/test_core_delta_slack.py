"""Property tests of the incremental slack evaluator.

The :class:`~repro.core.delta_slack.DeltaSlackEvaluator` maintains the
arrival/effective/required vectors of a compact timed graph under
single-delay edits; the budgeting kernel trusts it to be *bit-identical* to
recomputing the full kernels after every edit.  These tests replay seeded
random edit/trial/rollback sequences on real designs (kernel workloads and
segmented diamond CFGs with mixed widths and wait states) and compare every
intermediate state against fresh kernel runs — exact float equality, no
tolerances.
"""

import random

import pytest

from repro.core.delta_slack import DeltaSlackEvaluator, arrival_effective_kernel
from repro.core.graphkit import required_kernel
from repro.flows.pipeline import PointArtifacts
from repro.ir.operations import OpKind
from repro.lib.tsmc90 import tsmc90_library
from repro.verify.scenarios import generate_scenario
from repro.workloads import fir_design, matmul_design


@pytest.fixture(scope="module")
def library():
    return tsmc90_library()


def _compact_and_delays(design, library):
    artifacts = PointArtifacts.build(design)
    delays = {
        op.name: library.operation_delay(op, library.fastest_variant(op))
        for op in design.dfg.operations
        if op.kind is not OpKind.CONST and op.is_synthesizable
    }
    graph = artifacts.timed.compact()
    return graph, graph.delay_vector(delays)


def _assert_matches_fresh_kernels(evaluator, graph, clock_period, aligned,
                                  context):
    arrival, effective = arrival_effective_kernel(
        graph, evaluator.delays, clock_period, aligned)
    required = required_kernel(graph, evaluator.delays, clock_period,
                               aligned=aligned)
    assert evaluator.arrival == arrival, context
    assert evaluator.effective == effective, context
    assert evaluator.required == required, context


def _random_walk(graph, delays, clock_period, aligned, seed, steps=40):
    """Seeded edit walk: grow/shrink random delays, trial/commit/rollback."""
    rng = random.Random(seed)
    evaluator = DeltaSlackEvaluator(graph, delays, clock_period,
                                    aligned=aligned)
    synth = [node for node in range(graph.num_nodes)
             if evaluator.delays[node] > 0.0]
    if not synth:
        pytest.skip("design has no synthesizable delay to edit")
    shadow = list(evaluator.delays)
    for step in range(steps):
        node = rng.choice(synth)
        new_delay = round(shadow[node] * rng.choice((0.5, 0.8, 1.25, 2.0)), 6)
        action = rng.random()
        if action < 0.5:
            # Committed edit: the shadow model changes too.
            evaluator.begin_trial()
            evaluator.set_delay(node, new_delay)
            evaluator.commit()
            shadow[node] = new_delay
        elif action < 0.85:
            # Rolled-back trial: the evaluator must return to the shadow
            # state exactly.
            evaluator.begin_trial()
            evaluator.set_delay(node, new_delay)
            evaluator.worst_slack()
            evaluator.rollback()
        else:
            # Untracked direct edit (no journal) is also supported.
            evaluator.set_delay(node, new_delay)
            shadow[node] = new_delay
        assert evaluator.delays == shadow, f"seed={seed} step={step}"
        _assert_matches_fresh_kernels(
            evaluator, graph, clock_period, aligned,
            f"seed={seed} step={step} aligned={aligned}")
    return evaluator


@pytest.mark.parametrize("aligned", [False, True])
def test_kernel_workload_walks_are_bit_identical(library, aligned):
    design = fir_design(taps=8, latency=6, clock_period=1500.0)
    graph, delays = _compact_and_delays(design, library)
    _random_walk(graph, delays, 1500.0, aligned, seed=101)


def test_matmul_walk_is_bit_identical(library):
    design = matmul_design(size=3, latency=8, clock_period=1500.0)
    graph, delays = _compact_and_delays(design, library)
    _random_walk(graph, delays, 1500.0, aligned=True, seed=202)


@pytest.mark.parametrize("seed", [3, 17, 55, 91])
def test_segmented_scenario_walks_are_bit_identical(library, seed):
    """Mixed widths, diamond CFGs and wait states from the fuzz generator."""
    spec = generate_scenario(seed)
    design = spec.design()
    graph, delays = _compact_and_delays(design, library)
    _random_walk(graph, delays, spec.clock_period, aligned=True, seed=seed,
                 steps=25)


def test_seed_cache_reuses_initial_vectors(library):
    """Two evaluators over the same (graph, delays, clock) share one seed
    computation; mutating the first must not leak into the second."""
    design = fir_design(taps=8, latency=6, clock_period=1500.0)
    graph, delays = _compact_and_delays(design, library)
    first = DeltaSlackEvaluator(graph, list(delays), 1500.0, aligned=True)
    baseline = (list(first.arrival), list(first.effective),
                list(first.required))
    node = next(n for n in range(graph.num_nodes) if first.delays[n] > 0)
    first.set_delay(node, first.delays[node] * 2.0)
    second = DeltaSlackEvaluator(graph, list(delays), 1500.0, aligned=True)
    assert (second.arrival, second.effective, second.required) == \
        (baseline[0], baseline[1], baseline[2])


def test_export_matches_full_timing_result(library):
    design = fir_design(taps=8, latency=6, clock_period=1500.0)
    graph, delays = _compact_and_delays(design, library)
    evaluator = _random_walk(graph, delays, 1500.0, aligned=True, seed=7,
                             steps=10)
    result = evaluator.export()
    # The exported TimingResult mirrors the evaluator's vectors name by name.
    for name, index in graph.index.items():
        if name in result.arrival:
            assert result.arrival[name] == evaluator.arrival[index]
            assert result.required[name] == evaluator.required[index]
