"""Corpus: JSONL robustness, last-record-wins, byte-stable round trips."""

import json
import os

import pytest

from repro.errors import ReproError
from repro.verify.corpus import CORPUS_SCHEMA, Corpus, dump_record, open_corpus
from repro.verify.scenarios import generate_scenario


@pytest.fixture()
def corpus_path(tmp_path):
    return str(tmp_path / "corpus.jsonl")


def test_add_and_reload_round_trips_the_spec(corpus_path):
    spec = generate_scenario(5)
    corpus = Corpus(corpus_path)
    record = corpus.add(spec, "pipeline-cache", "details here")
    assert record["seed"] == spec.seed
    assert record["ops"] == spec.num_design_ops()

    reloaded = Corpus(corpus_path)
    assert len(reloaded) == 1
    entry = reloaded.records()[0]
    assert reloaded.spec_of(entry) == spec
    assert entry["fingerprint"] == spec.fingerprint()


def test_last_record_wins_per_oracle_and_fingerprint(corpus_path):
    spec = generate_scenario(5)
    corpus = Corpus(corpus_path)
    corpus.add(spec, "pipeline-cache", "first")
    corpus.add(spec, "pipeline-cache", "second")
    corpus.add(spec, "executor-modes", "other oracle")

    reloaded = Corpus(corpus_path)
    assert len(reloaded) == 2  # keys: two oracles, one fingerprint
    record = reloaded.get("pipeline-cache", spec.fingerprint())
    assert record is not None and record["details"] == "second"
    # Three physical lines were appended.
    with open(corpus_path, "r", encoding="utf-8") as handle:
        assert len(handle.readlines()) == 3


def test_loading_tolerates_garbage_and_unknown_schemas(corpus_path):
    spec = generate_scenario(6)
    corpus = Corpus(corpus_path)
    corpus.add(spec, "pareto-front", "ok record")
    with open(corpus_path, "a", encoding="utf-8") as handle:
        handle.write("not json at all\n")
        handle.write("\n")
        handle.write(json.dumps({"schema": 999, "oracle": "x"}) + "\n")
        handle.write('{"schema": 1, "oracle": 7}\n')  # wrong field types
        handle.write('{"truncated-by-a-crash')

    reloaded = Corpus(corpus_path)
    assert len(reloaded) == 1
    assert reloaded.skipped_lines == 4  # the blank line is not counted


def test_missing_file_and_in_memory_corpora(tmp_path):
    assert len(Corpus(str(tmp_path / "never-written.jsonl"))) == 0
    memory = Corpus(None)
    memory.add(generate_scenario(1), "pareto-front", "in memory")
    assert len(memory) == 1
    with pytest.raises(ReproError):
        memory.rewrite()  # no path to compact to


def test_open_corpus_rejects_directories(tmp_path):
    with pytest.raises(ReproError):
        open_corpus(str(tmp_path))


def test_round_trip_is_byte_stable_across_runs(tmp_path):
    """dump -> load -> dump again must be byte-identical, twice over: the
    corpus is the permanent regression memory, so its serialisation may
    not wobble between runs or processes."""
    first_path = str(tmp_path / "first.jsonl")
    second_path = str(tmp_path / "second.jsonl")
    third_path = str(tmp_path / "third.jsonl")

    corpus = Corpus(first_path)
    for seed in (3, 4, 9):
        corpus.add(generate_scenario(seed), "sequential-slack", f"seed {seed}")

    Corpus(first_path).rewrite(second_path)
    Corpus(second_path).rewrite(third_path)
    with open(first_path, "rb") as handle:
        first = handle.read()
    with open(second_path, "rb") as handle:
        second = handle.read()
    with open(third_path, "rb") as handle:
        third = handle.read()
    assert first == second == third

    # A freshly generated equal corpus serialises to the same bytes too.
    other = Corpus(str(tmp_path / "regenerated.jsonl"))
    for seed in (3, 4, 9):
        other.add(generate_scenario(seed), "sequential-slack", f"seed {seed}")
    with open(other.path, "rb") as handle:
        assert handle.read() == first


def test_dump_record_is_canonical_json():
    spec = generate_scenario(2)
    record = Corpus(None).add(spec, "pareto-front", "x")
    line = dump_record(record)
    assert json.loads(line)["schema"] == CORPUS_SCHEMA
    assert line == json.dumps(json.loads(line), sort_keys=True)


def test_find_by_fingerprint_prefix(corpus_path):
    corpus = Corpus(corpus_path)
    spec = generate_scenario(8)
    corpus.add(spec, "pipeline-cache", "x")
    fingerprint = spec.fingerprint()
    assert corpus.find(fingerprint[:12])[0]["fingerprint"] == fingerprint
    assert corpus.find("ffffffffffff") == []


def test_rewrite_compacts_superseded_lines(corpus_path):
    spec = generate_scenario(5)
    corpus = Corpus(corpus_path)
    corpus.add(spec, "pipeline-cache", "first")
    corpus.add(spec, "pipeline-cache", "second")
    corpus.rewrite()
    with open(corpus_path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle if line.strip()]
    assert len(lines) == 1
    assert json.loads(lines[0])["details"] == "second"
    assert os.path.getsize(corpus_path) > 0


def test_failure_and_shrunk_records_never_collide(corpus_path):
    """A shrunk reproducer that shares its parent's structure (e.g. only
    the pipeline II was shrunk away) must not overwrite the raw failure —
    kind and evaluation knobs are part of the record key."""
    from dataclasses import replace

    base = generate_scenario(5)
    pipelined = replace(base, pipeline_ii=2)
    corpus = Corpus(corpus_path)
    fingerprint = base.fingerprint()  # structure ignores the II
    assert pipelined.fingerprint() == fingerprint
    corpus.add(pipelined, "pipeline-cache", "raw failure", kind="failure",
               fingerprint=fingerprint)
    corpus.add(base, "pipeline-cache", "shrunk repro", kind="shrunk",
               fingerprint=fingerprint, shrunk_from=fingerprint)

    reloaded = Corpus(corpus_path)
    assert len(reloaded) == 2
    kinds = {record["kind"] for record in reloaded.records()}
    assert kinds == {"failure", "shrunk"}
    raw = reloaded.get("pipeline-cache", fingerprint, kind="failure")
    assert raw is not None and raw["spec"]["pipeline_ii"] == 2


def test_same_structure_different_knobs_keep_separate_records(corpus_path):
    from dataclasses import replace

    spec = generate_scenario(5)
    other_margin = replace(spec, margin_fraction=spec.margin_fraction + 0.05)
    corpus = Corpus(corpus_path)
    corpus.add(spec, "pipeline-cache", "at margin A")
    corpus.add(other_margin, "pipeline-cache", "at margin B")
    assert len(Corpus(corpus_path)) == 2
