"""Tests of the batched sweep-session evaluation API.

The contract under test everywhere: a :class:`repro.flows.sweep.SweepSession`
is observationally identical to independent per-point
:func:`repro.flows.dse.evaluate_point` runs — float for float in the metrics
JSON — while actually sharing designs, artifact bundles and warm delta
caches across the points.
"""

import json
import warnings

import pytest

from repro.flows import (
    DesignPoint,
    DSEEngine,
    SweepSession,
    evaluate_point,
    knob_distance,
    latency_grid,
    run_dse,
    sweep_plan,
)
from repro.core.analysis_cache import AnalysisCache
from repro.lib.tsmc90 import tsmc90_library
from repro.verify.scenarios import generate_scenario
from repro.workloads.factories import KernelPointFactory

CLOCK = 1500.0


@pytest.fixture(scope="module")
def library():
    return tsmc90_library()


@pytest.fixture(scope="module")
def factory():
    return KernelPointFactory("fir", params=(("taps", 8),))


def _metrics_json(entry) -> str:
    return json.dumps(entry.metrics(), sort_keys=True)


# -- ordering ----------------------------------------------------------------------


def test_sweep_plan_is_a_permutation():
    points = [
        DesignPoint("a", latency=8, clock_period=2000.0),
        DesignPoint("b", latency=6, clock_period=1500.0),
        DesignPoint("c", latency=8, clock_period=1500.0),
        DesignPoint("d", latency=6, pipeline_ii=3, clock_period=1500.0),
        DesignPoint("e", latency=6, clock_period=1200.0),
    ]
    plan = sweep_plan(points)
    assert sorted(plan) == list(range(len(points)))
    ordered = [points[i] for i in plan]
    # Structure-grouped: both latency-8 non-pipelined points are adjacent,
    # clocks ascending within the group; pipelined trails its latency group.
    assert [p.name for p in ordered] == ["e", "b", "d", "c", "a"]


def test_sweep_plan_neighbors_share_structure_when_possible():
    points = latency_grid(6, 8, clock_period=CLOCK) \
        + latency_grid(6, 8, clock_period=2 * CLOCK, prefix="S")
    ordered = [points[i] for i in sweep_plan(points)]
    # Every same-latency pair must be adjacent (differ only in the clock).
    for left, right in zip(ordered, ordered[1:]):
        if left.latency == right.latency:
            assert knob_distance(left, right) == 1


def test_sweep_plan_is_stable_for_identical_knobs():
    points = [DesignPoint(f"p{i}", latency=6, clock_period=CLOCK)
              for i in range(4)]
    assert sweep_plan(points) == [0, 1, 2, 3]


def test_knob_distance_counts_differing_knobs():
    base = DesignPoint("x", latency=6, clock_period=CLOCK)
    assert knob_distance(base, base) == 0
    assert knob_distance(
        base, DesignPoint("y", latency=6, clock_period=2000.0)) == 1
    assert knob_distance(
        base, DesignPoint("z", latency=8, pipeline_ii=4,
                          clock_period=2000.0)) == 3


# -- session semantics -------------------------------------------------------------


def test_run_returns_entries_in_caller_order(library, factory):
    points = [
        DesignPoint("late", latency=8, clock_period=CLOCK),
        DesignPoint("early", latency=6, clock_period=CLOCK),
        DesignPoint("mid", latency=7, clock_period=CLOCK),
    ]
    result = SweepSession(factory, library, cache=AnalysisCache()).run(points)
    assert [entry.point.name for entry in result.entries] \
        == ["late", "early", "mid"]


def test_session_matches_per_point_evaluation(library, factory):
    points = [
        DesignPoint("a", latency=6, clock_period=CLOCK),
        DesignPoint("b", latency=6, clock_period=1.25 * CLOCK),
        DesignPoint("c", latency=8, clock_period=CLOCK),
    ]
    session = SweepSession(factory, library, cache=AnalysisCache())
    batched = session.run(points)
    for point, entry in zip(points, batched.entries):
        solo = evaluate_point(factory, library, point, use_cache=False)
        assert _metrics_json(entry) == _metrics_json(solo), point.name


def test_session_counts_delta_and_fallback_points(library, factory):
    session = SweepSession(factory, library, cache=AnalysisCache())
    same_structure = DesignPoint("p0", latency=6, clock_period=CLOCK)
    session.evaluate(same_structure)
    assert session.stats.full_evaluations == 1
    assert session.stats.delta_points == 0
    # Same structure at a different clock: delta path, shared bundle.
    session.evaluate(DesignPoint("p0", latency=6, clock_period=1.2 * CLOCK))
    assert session.stats.delta_points == 1
    assert session.stats.interned_reuses == 1
    assert session.stats.artifacts_shared == 1
    # A structurally diverging point falls back to a full evaluation.
    session.evaluate(DesignPoint("p1", latency=8, clock_period=CLOCK))
    assert session.stats.full_evaluations == 2
    assert session.stats.points_evaluated == 3
    assert session.stats.delta_evaluators > 0
    assert session.stats.delta_updates >= session.stats.delta_evaluators


def test_private_session_never_touches_shared_cache(library, factory):
    cache = AnalysisCache()
    session = SweepSession(factory, library, cache=cache, use_cache=False)
    session.evaluate(DesignPoint("p0", latency=6, clock_period=CLOCK))
    assert cache.cache_info()["artifacts"]["size"] == 0
    assert session.stats.artifacts_built == 1


def test_seeded_property_sweep_batched_equals_per_point(library):
    """The ISSUE's property sweep: segmented designs (mixed widths, wait
    states, diamond CFGs) across clock-period knobs, batched == per-point
    float for float."""
    for seed in (5, 29, 73):
        spec = generate_scenario(seed)
        factory = spec.factory()
        points = [
            spec.point("q0"),
            spec.point("q1", clock_period=spec.clock_period * 1.25),
            spec.point("q2", clock_period=spec.clock_period * 0.8),
        ]
        session = SweepSession(factory, library,
                               margin_fraction=spec.margin_fraction,
                               cache=AnalysisCache())

        def evaluate(callable_):
            try:
                return _metrics_json(callable_()), None
            except Exception as exc:  # infeasible scenarios must agree too
                return None, f"{type(exc).__name__}: {exc}"

        for point in points:
            got, got_error = evaluate(lambda: session.evaluate(point))
            want, want_error = evaluate(lambda: evaluate_point(
                factory, library, point,
                margin_fraction=spec.margin_fraction, use_cache=False))
            assert got_error == want_error, f"seed={seed} {point.name}"
            assert got == want, f"seed={seed} {point.name}"


# -- shims and rewired call paths --------------------------------------------------


def test_run_dse_flows_argument_is_gone(library, factory):
    """The PR-6 deprecated ``flows=`` selector has been removed for good."""
    points = [DesignPoint("p0", latency=6, clock_period=CLOCK)]
    with pytest.raises(TypeError):
        run_dse(factory, library, points, flows=("conventional", "slack"))
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # and the clean call emits no warning
        run_dse(factory, library, points)


def test_evaluate_point_shim_matches_session_path(library, factory):
    """The one-point shim and an explicit session agree byte for byte."""
    point = DesignPoint("p0", latency=6, clock_period=CLOCK)
    shim = evaluate_point(factory, library, point, use_cache=False)
    session = SweepSession(factory, library, cache=AnalysisCache())
    assert _metrics_json(shim) == _metrics_json(session.evaluate(point))


def test_engine_serial_path_uses_shared_session(library, factory):
    points = [
        DesignPoint("p0", latency=6, clock_period=CLOCK),
        DesignPoint("p1", latency=6, clock_period=1.25 * CLOCK),
    ]
    session = SweepSession(factory, library, cache=AnalysisCache())
    engine = DSEEngine(factory, library, points, executor="serial",
                       session=session)
    result = engine.run()
    assert not result.errors
    assert session.stats.points_evaluated == 2
    assert session.stats.delta_points == 1
    # And the session-backed sweep equals a per-point baseline.
    for point, outcome in zip(points, result.outcomes):
        solo = evaluate_point(factory, library, point, use_cache=False)
        assert json.dumps(outcome.metrics, sort_keys=True) \
            == _metrics_json(solo)
