"""Differential oracles: every registered oracle agrees on seeded scenarios,
and the registry/failure-arbitration plumbing behaves."""

import pytest

from repro.errors import ReproError
from repro.verify.oracles import (
    ORACLES,
    _compare_failures,
    default_library,
    oracle,
    select_oracles,
)
from repro.verify.scenarios import generate_pipelined_scenario, generate_scenario

EXPECTED_ORACLES = ("area-recovery", "sequential-slack", "executor-modes",
                    "pipeline-cache", "sweep-session", "graphkit-kernels",
                    "graphkit-state-timing", "pipelined-vs-unrolled",
                    "pareto-front")


def test_registry_contains_the_documented_oracles_in_order():
    assert tuple(ORACLES) == EXPECTED_ORACLES
    for entry in ORACLES.values():
        assert entry.description


def test_select_oracles_resolves_names_and_rejects_unknown():
    assert [o.name for o in select_oracles(None)] == list(EXPECTED_ORACLES)
    assert [o.name for o in select_oracles(["pipeline-cache"])] \
        == ["pipeline-cache"]
    with pytest.raises(ReproError):
        select_oracles(["no-such-oracle"])


def test_duplicate_oracle_registration_is_rejected():
    with pytest.raises(ReproError):
        oracle("area-recovery", "duplicate")(lambda spec, library: "")


@pytest.mark.parametrize("name", EXPECTED_ORACLES)
@pytest.mark.parametrize("seed", (0, 1, 2, 3))
def test_oracles_agree_on_generated_scenarios(name, seed):
    """The standing claim of the verification layer: on any generated
    scenario every pair of engines agrees.  A failure here is a real bug in
    one of the paired implementations (replay it via the printed seed)."""
    spec = generate_scenario(seed)
    outcome = ORACLES[name].run(spec, default_library())
    assert outcome.ok, (
        f"oracle {name} found a violation on seed {seed}: {outcome.details}")


def test_oracles_agree_on_a_branchy_and_a_pipelined_scenario():
    branchy = next(spec for spec in (generate_scenario(s) for s in range(50))
                   if any(seg[0] == "diamond" for seg in spec.segments))
    pipelined = next(spec for spec in (generate_scenario(s) for s in range(300))
                     if spec.pipeline_ii is not None)
    for spec in (branchy, pipelined):
        for entry in ORACLES.values():
            outcome = entry.run(spec)
            assert outcome.ok, (
                f"{entry.name} on seed {spec.seed}: {outcome.details}")


class TestPipelinedVsUnrolled:
    @pytest.mark.parametrize("seed", range(8))
    def test_agrees_on_the_pipelined_family(self, seed):
        spec = generate_pipelined_scenario(seed)
        assert spec.pipeline_ii is not None and spec.carried
        outcome = ORACLES["pipelined-vs-unrolled"].run(spec, default_library())
        assert outcome.ok, (
            f"seed {spec.seed}: {outcome.details}")

    def test_skips_unpipelined_scenarios(self):
        spec = next(s for s in (generate_scenario(seed) for seed in range(50))
                    if s.pipeline_ii is None)
        outcome = ORACLES["pipelined-vs-unrolled"].run(spec, default_library())
        assert outcome.ok and outcome.details == ""

    def test_catches_a_broken_modulo_schedule(self, monkeypatch):
        """Force the achieved II below what the recurrences allow: the
        expanded dependence check must flag the overlap."""
        import repro.verify.oracles as oracles_mod

        real_flow = oracles_mod.conventional_flow

        def lying_flow(design, library, **kwargs):
            flow = real_flow(design, library, **kwargs)
            if "initiation_interval" in flow.details:
                flow.details["initiation_interval"] = 1
                # Claim every schedule step collapses onto step 0 — a
                # maximally-overlapped (and wrong) pipelining claim.
                for item in flow.schedule.items:
                    object.__setattr__(item, "step", 0)
            return flow

        monkeypatch.setattr(oracles_mod, "conventional_flow", lying_flow)
        caught = False
        for seed in range(10):
            spec = generate_pipelined_scenario(seed)
            outcome = ORACLES["pipelined-vs-unrolled"].run(
                spec, default_library())
            if not outcome.ok:
                caught = True
                assert "violated" in outcome.details \
                    or "collide" in outcome.details
                break
        assert caught, "no pipelined scenario tripped the broken schedule"


def test_compare_failures_arbitration():
    # Both sides succeed: proceed to value comparison.
    assert _compare_failures("a", None, "b", None) is None
    # Both sides fail identically: agreement (empty violation).
    assert _compare_failures("a", "ReproError: x", "b", "ReproError: x") == ""
    # Asymmetric failures are violations.
    assert "disagree" in _compare_failures("a", "ReproError: x", "b", None)
    assert "disagree" in _compare_failures("a", None, "b", "ReproError: x")
    assert "disagree" in _compare_failures("a", "ReproError: x",
                                           "b", "ReproError: y")


def test_outcome_details_name_the_disagreement(monkeypatch):
    """Force a real divergence and check it is caught: a patched
    recover_area that skips every downgrade must trip the area-recovery
    oracle on a scenario where recovery finds work."""
    import repro.verify.oracles as oracles_mod
    from repro.rtl.area_recovery import AreaRecoveryResult

    def no_recovery(datapath, register_margin=0.0, max_rounds=1000):
        area = datapath.binding.total_fu_area()
        return AreaRecoveryResult(downgrades=0, area_before=area,
                                  area_after=area)

    monkeypatch.setattr(oracles_mod, "recover_area", no_recovery)
    caught = False
    for seed in range(20):
        outcome = ORACLES["area-recovery"].run(generate_scenario(seed))
        if not outcome.ok:
            caught = True
            assert "downgrades" in outcome.details \
                or "area_after" in outcome.details
            break
    assert caught, "no scenario in the first 20 exercised area recovery"
