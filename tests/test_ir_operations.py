"""Unit tests for repro.ir.operations."""

import pytest

from repro.ir.operations import (
    COMMUTATIVE_KINDS,
    COMPARISON_KINDS,
    IO_KINDS,
    Operation,
    OpKind,
    is_fixed_kind,
    is_io,
    is_synthesizable,
)


def test_io_kinds_are_fixed():
    assert is_io(OpKind.READ)
    assert is_io(OpKind.WRITE)
    assert is_fixed_kind(OpKind.READ)
    assert not is_fixed_kind(OpKind.ADD)


def test_synthesizable_classification():
    assert is_synthesizable(OpKind.ADD)
    assert is_synthesizable(OpKind.MUL)
    assert not is_synthesizable(OpKind.CONST)
    assert not is_synthesizable(OpKind.COPY)
    assert not is_synthesizable(OpKind.READ)
    assert not is_synthesizable(OpKind.WRITE)


def test_comparison_results_are_one_bit():
    op = Operation(name="cmp", kind=OpKind.LT, width=16, operand_widths=(16, 16))
    assert op.width == 1
    assert op.operand_widths == (16, 16)
    assert op.max_operand_width == 16


def test_io_operations_are_always_fixed():
    op = Operation(name="rd", kind=OpKind.READ, width=8, operand_widths=())
    assert op.is_fixed
    assert op.is_io
    assert not op.is_synthesizable


def test_default_operand_widths_follow_result_width():
    op = Operation(name="a", kind=OpKind.ADD, width=12)
    assert op.operand_widths == (12, 12)
    assert op.max_operand_width == 12


def test_const_operations_have_no_default_operands():
    op = Operation(name="c", kind=OpKind.CONST, width=8, value=5)
    assert op.operand_widths == ()
    assert op.is_const
    assert not op.is_synthesizable


def test_operations_hash_by_identity_uid():
    a = Operation(name="x", kind=OpKind.ADD, width=8)
    b = Operation(name="x", kind=OpKind.ADD, width=8)
    assert a != b
    assert len({a, b}) == 2


def test_commutative_and_comparison_sets_are_disjoint_from_io():
    assert not (COMMUTATIVE_KINDS & IO_KINDS)
    assert not (COMPARISON_KINDS & IO_KINDS)
    assert OpKind.ADD in COMMUTATIVE_KINDS
    assert OpKind.SUB not in COMMUTATIVE_KINDS
    assert OpKind.LT in COMPARISON_KINDS
