"""Tests of span export: JSONL round-trips and Chrome trace conversion."""

import json

from repro.obs.export import (
    chrome_trace_events,
    jsonl_to_chrome_trace,
    load_spans_jsonl,
    records_to_spans,
    span_records,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.trace import Span


def forest():
    root = Span("sweep.point", attrs={"design": "idct"}, start=10.0,
                end=11.0, track="main")
    child = Span("flow.schedule", attrs={"latency": 8}, start=10.1,
                 end=10.7, track="main")
    grand = Span("delta.seed_kernels", start=10.2, end=10.4, track="main")
    child.children.append(grand)
    root.children.append(child)
    other = Span("sweep.point", start=12.0, end=12.5, track="worker:P1")
    return [root, other]


def test_span_records_preorder_ids_and_parents():
    records = span_records(forest())
    assert [r["id"] for r in records] == [0, 1, 2, 3]
    assert [r["parent"] for r in records] == [None, 0, 1, None]
    assert records[1]["attrs"] == {"latency": 8}


def test_non_json_attr_values_are_reprd():
    span = Span("s", attrs={"obj": object(), "n": 1}, start=0.0, end=1.0)
    (record,) = span_records([span])
    assert record["attrs"]["n"] == 1
    assert record["attrs"]["obj"].startswith("<object object")


def test_records_roundtrip_rebuilds_identical_trees():
    roots = forest()
    rebuilt = records_to_spans(span_records(roots))
    assert [r.to_dict() for r in rebuilt] == [r.to_dict() for r in roots]


def test_unknown_parent_grafts_as_root():
    records = [{"id": 5, "parent": 3, "name": "orphan",
                "start": 0.0, "end": 1.0, "track": "main", "attrs": {}}]
    (root,) = records_to_spans(records)
    assert root.name == "orphan"


def test_jsonl_write_load_roundtrip(tmp_path):
    path = tmp_path / "spans.jsonl"
    roots = forest()
    assert write_spans_jsonl(roots, str(path)) == 4
    assert len(path.read_text().splitlines()) == 4
    loaded = load_spans_jsonl(str(path))
    assert [r.to_dict() for r in loaded] == [r.to_dict() for r in roots]


def test_jsonl_load_tolerates_corrupt_lines(tmp_path):
    path = tmp_path / "spans.jsonl"
    write_spans_jsonl(forest(), str(path))
    lines = path.read_text().splitlines()
    lines[1] = "{not json"  # corrupt the flow.schedule record
    path.write_text("\n".join(lines) + "\n")
    loaded = load_spans_jsonl(str(path))
    # The corrupt span is gone; its child is grafted in as a root.
    names = sorted(r.name for r in loaded)
    assert names == ["delta.seed_kernels", "sweep.point", "sweep.point"]


def test_chrome_events_rebase_to_integer_microseconds():
    events = chrome_trace_events(forest())
    complete = [e for e in events if e["ph"] == "X"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(complete) == 4 and len(meta) == 2
    # Rebased to the earliest start (10.0 s) and expressed in integer µs.
    first = complete[0]
    assert first["ts"] == 0 and first["dur"] == 1_000_000
    assert all(isinstance(e["ts"], int) and isinstance(e["dur"], int)
               for e in complete)
    # Distinct tracks get distinct tids, each named by a metadata event.
    tids = {e["tid"] for e in complete}
    assert len(tids) == 2
    assert {e["args"]["name"] for e in meta} == {"main", "worker:P1"}


def test_chrome_events_empty_forest():
    assert chrome_trace_events([]) == []


def test_write_chrome_trace_payload_shape(tmp_path):
    path = tmp_path / "trace.json"
    assert write_chrome_trace(forest(), str(path)) == 6
    payload = json.loads(path.read_text())
    assert payload["displayTimeUnit"] == "ms"
    assert len(payload["traceEvents"]) == 6


def test_jsonl_to_chrome_conversion_is_byte_stable(tmp_path):
    jsonl = tmp_path / "spans.jsonl"
    write_spans_jsonl(forest(), str(jsonl))
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    jsonl_to_chrome_trace(str(jsonl), str(first))
    jsonl_to_chrome_trace(str(jsonl), str(second))
    assert first.read_bytes() == second.read_bytes()
