"""Tests for ASAP/ALAP, the list scheduler and the relaxation loop."""

import pytest

from repro.errors import InfeasibleDesignError, SchedulingError
from repro.core.latency import LatencyAnalysis
from repro.core.opspan import OperationSpans
from repro.ir.operations import OpKind
from repro.sched.allocation import Allocation, minimal_allocation, resource_class_key
from repro.sched.asap_alap import alap_schedule, asap_schedule
from repro.sched.list_scheduler import try_list_schedule
from repro.sched.priorities import combined_priority, mobility_priority, slack_priority
from repro.sched.relaxation import schedule_with_relaxation


def fastest_variants(design, library):
    return {op.name: (library.fastest_variant(op) if op.is_synthesizable else None)
            for op in design.dfg.operations if op.kind is not OpKind.CONST}


def test_asap_schedule_is_valid_and_complete(interpolation, library):
    schedule = asap_schedule(interpolation, library, 1100.0,
                             fastest_variants(interpolation, library))
    assert schedule.is_complete()
    assert schedule.validate() == []
    assert schedule.latency_steps() <= 3


def test_alap_schedule_is_valid_and_not_earlier_than_asap(interpolation, library):
    variants = fastest_variants(interpolation, library)
    asap = asap_schedule(interpolation, library, 1100.0, variants)
    alap = alap_schedule(interpolation, library, 1100.0, variants)
    assert alap.is_complete()
    assert alap.validate() == []
    for op in asap.scheduled_ops:
        assert alap.step_of(op) >= asap.step_of(op)


def test_asap_rejects_operation_larger_than_clock(interpolation, library):
    variants = fastest_variants(interpolation, library)
    with pytest.raises(SchedulingError):
        asap_schedule(interpolation, library, 300.0, variants)


def test_list_scheduler_respects_resource_limits(interpolation, library):
    variants = fastest_variants(interpolation, library)
    allocation = minimal_allocation(interpolation, library)
    attempt = try_list_schedule(interpolation, library, 1100.0, variants, allocation)
    assert attempt.success
    schedule = attempt.schedule
    assert schedule.is_complete()
    assert schedule.validate() == []
    for edge in ("e1", "e2", "e3"):
        muls = [item for item in schedule.ops_on_edge(edge)
                if interpolation.dfg.op(item.op).kind is OpKind.MUL]
        assert len(muls) <= allocation.limits[("mul", 8)]


def test_list_scheduler_reports_resource_failure(interpolation, library):
    variants = fastest_variants(interpolation, library)
    allocation = Allocation({("mul", 8): 1, ("add", 16): 1})
    attempt = try_list_schedule(interpolation, library, 1100.0, variants, allocation)
    assert not attempt.success
    assert attempt.failure.reason == "resource"
    assert attempt.failure.class_key in {("mul", 8), ("add", 16)}


def test_list_scheduler_reports_timing_failure(interpolation, library):
    slowest = {op.name: (library.slowest_variant(op) if op.is_synthesizable else None)
               for op in interpolation.dfg.operations if op.kind is not OpKind.CONST}
    allocation = minimal_allocation(interpolation, library)
    attempt = try_list_schedule(interpolation, library, 1100.0, slowest, allocation,
                                upgrade_on_last_chance=False)
    assert not attempt.success
    assert attempt.failure.reason == "timing"


def test_upgrade_on_last_chance_repairs_timing(interpolation, library):
    slowest = {op.name: (library.slowest_variant(op) if op.is_synthesizable else None)
               for op in interpolation.dfg.operations if op.kind is not OpKind.CONST}
    allocation = minimal_allocation(interpolation, library)
    attempt = try_list_schedule(interpolation, library, 1100.0, dict(slowest),
                                allocation, upgrade_on_last_chance=True)
    # The on-the-fly upgrades may or may not be enough on their own, but they
    # must never produce an invalid schedule.
    if attempt.success:
        assert attempt.schedule.validate() == []
    else:
        assert attempt.failure.reason in ("timing", "resource")


def test_relaxation_reaches_a_feasible_schedule(interpolation, library):
    variants = fastest_variants(interpolation, library)
    tight = Allocation({("mul", 8): 1, ("add", 16): 1})
    schedule, allocation, final_variants, log = schedule_with_relaxation(
        interpolation, library, 1100.0, variants, allocation=tight)
    assert schedule.is_complete()
    assert allocation.limits[("mul", 8)] >= 2
    assert log.attempts >= 2
    assert log.resources_added


def test_relaxation_raises_for_impossible_clock(interpolation, library):
    variants = fastest_variants(interpolation, library)
    with pytest.raises(InfeasibleDesignError):
        schedule_with_relaxation(interpolation, library, 300.0, variants)


def test_pipelined_scheduling_uses_congruent_slots(small_idct, library):
    variants = fastest_variants(small_idct, library)
    spans = OperationSpans(small_idct)
    allocation = minimal_allocation(small_idct, library, spans=spans, pipeline_ii=4)
    attempt = try_list_schedule(small_idct, library, 1500.0, variants, allocation,
                                spans=spans, pipeline_ii=4)
    if not attempt.success:
        pytest.skip("minimal allocation insufficient for this II; covered by flows")
    schedule = attempt.schedule
    usage = {}
    for item in schedule.items:
        op = small_idct.dfg.op(item.op)
        key = resource_class_key(op, library)
        if key is None:
            continue
        slot = (item.step % 4, key)
        usage[slot] = usage.get(slot, 0) + 1
    for (slot, key), count in usage.items():
        assert count <= allocation.limits[key]


def test_priorities_order_ready_operations(interpolation, library):
    spans = OperationSpans(interpolation)
    mobility = mobility_priority(spans)
    assert mobility("write_x") < mobility("mul_x_0")
    from repro.core.sequential_slack import compute_sequential_slack
    from repro.core.timed_dfg import build_timed_dfg
    timed = build_timed_dfg(interpolation, spans=spans)
    delays = {op.name: library.operation_delay(op) for op in
              interpolation.dfg.operations if op.kind is not OpKind.CONST}
    timing = compute_sequential_slack(timed, delays, 1100.0)
    slack_p = slack_priority(timing)
    combined = combined_priority(timing, spans)
    most_critical = min(timing.slack, key=timing.slack.get)
    assert slack_p(most_critical)[0] <= slack_p("write_x")[0]
    assert combined(most_critical)[0] == timing.slack[most_critical]
