"""Tests of the ``repro-explore`` CLI (the console entry point)."""

import json

import pytest

from repro.explore.cli import _parse_latencies, build_parser, main


class TestArgumentParsing:
    def test_latency_range_and_list(self):
        assert _parse_latencies("8:11") == [8, 9, 10, 11]
        assert _parse_latencies("8,12,16") == [8, 12, 16]

    def test_empty_range_rejected(self):
        import argparse
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_latencies("12:8")

    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.workload == "idct"
        assert args.flow == "slack_based"
        assert not args.dense

    @pytest.mark.parametrize("bad", ["taps", "taps=abc"])
    def test_malformed_param_is_a_clean_usage_error(self, bad, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--param", bad])
        assert excinfo.value.code == 2
        assert "--param" in capsys.readouterr().err


def test_cli_end_to_end_fir(tmp_path, capsys):
    store = tmp_path / "store.jsonl"
    json_path = tmp_path / "frontier.json"
    md_path = tmp_path / "frontier.md"
    code = main([
        "--workload", "fir", "--param", "taps=4",
        "--latencies", "4:8", "--coarse", "3", "--width-stop", "2",
        "--store", str(store),
        "--json", str(json_path), "--markdown", str(md_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "frontier" in out
    assert "engine evaluations:" in out

    report = json.loads(json_path.read_text())
    assert report["workload"] == "fir"
    assert report["front"]
    assert md_path.read_text().startswith("# Frontier report")
    assert store.exists()

    # Re-running resumes from the store: zero engine evaluations.
    code = main(["--workload", "fir", "--param", "taps=4",
                 "--latencies", "4:8", "--coarse", "3", "--width-stop", "2",
                 "--store", str(store), "--dense"])
    assert code == 0
    out = capsys.readouterr().out
    assert "engine evaluations: 0" in out or "restored:" in out


def test_cli_reports_repro_errors_as_exit_code_1(tmp_path, capsys):
    # A store path pointing at a directory is a ReproError, not a traceback.
    code = main(["--workload", "fir", "--param", "taps=4",
                 "--latencies", "4:6", "--store", str(tmp_path)])
    assert code == 1
    assert "repro-explore:" in capsys.readouterr().err
