"""Lint of .github/workflows/ci.yml: the quality gate must stay wired.

An ``act``-style dry parse: the workflow file is loaded as YAML and its
structure asserted, so a refactor cannot silently drop the nightly campaign
fleet, the perf-regression gate, the packaging smoke or the hygiene
settings (concurrency cancellation, pip caching).
"""

import os
import re

import pytest

yaml = pytest.importorskip("yaml")

WORKFLOW = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), ".github", "workflows", "ci.yml")

#: The jobs gated on the nightly cron (every other job opts out of it).
NIGHTLY_JOBS = {"campaign-shard", "campaign-merge"}


@pytest.fixture(scope="module")
def workflow():
    with open(WORKFLOW, "r", encoding="utf-8") as handle:
        data = yaml.safe_load(handle)
    assert isinstance(data, dict)
    return data


@pytest.fixture(scope="module")
def triggers(workflow):
    # YAML 1.1 parses the bare key `on` as boolean True.
    return workflow.get("on", workflow.get(True))


def _steps(workflow, job):
    assert job in workflow["jobs"], f"job {job!r} missing from ci.yml"
    return workflow["jobs"][job]["steps"]


def _run_text(workflow, job):
    return "\n".join(step.get("run", "") for step in _steps(workflow, job))


def _uploads(workflow, job):
    return [step for step in _steps(workflow, job)
            if str(step.get("uses", "")).startswith("actions/upload-artifact")]


def test_workflow_parses_and_has_all_jobs(workflow):
    assert set(workflow["jobs"]) == {
        "lint", "test", "coverage", "bench-smoke", "package",
        "campaign-shard", "campaign-merge"}


def test_schedule_and_dispatch_triggers(workflow, triggers):
    assert "schedule" in triggers, "nightly cron trigger missing"
    crons = [entry["cron"] for entry in triggers["schedule"]]
    assert len(crons) == 1 and len(crons[0].split()) == 5
    assert "workflow_dispatch" in triggers
    # The nightly event only runs the campaign fleet; every other job opts
    # out.
    for job, config in workflow["jobs"].items():
        condition = config.get("if", "")
        if job in NIGHTLY_JOBS:
            assert "schedule" in condition, job
        else:
            assert "github.event_name != 'schedule'" in condition, job


def test_concurrency_cancels_superseded_pr_runs(workflow):
    concurrency = workflow.get("concurrency")
    assert isinstance(concurrency, dict)
    assert "github.ref" in concurrency["group"]
    assert "cancel-in-progress" in concurrency


def test_every_setup_python_step_caches_pip(workflow):
    saw_setup = 0
    for job in workflow["jobs"].values():
        for step in job["steps"]:
            uses = step.get("uses", "")
            if uses.startswith("actions/setup-python"):
                saw_setup += 1
                assert step.get("with", {}).get("cache") == "pip", (
                    f"setup-python without pip cache in {uses}")
    assert saw_setup >= 7


def test_pr_scoped_fuzz_smoke_runs_in_the_test_job(workflow):
    run_text = _run_text(workflow, "test")
    assert "repro.verify run" in run_text
    assert "--iterations 50" in run_text
    assert "--seed 0" in run_text
    # No oracle filter: every registered oracle (including
    # pipelined-vs-unrolled) joins the PR-scoped round-robin.
    assert "--oracles" not in run_text


def test_serve_smoke_gate_is_wired(workflow):
    """The serve-layer memoization gate must run in the PR test matrix and
    from the installed wheel: a cold+warm round trip whose warm resubmit
    performs zero new flow evaluations (see ``repro serve smoke``)."""
    assert "python -m repro.serve smoke" in _run_text(workflow, "test")
    package_text = _run_text(workflow, "package")
    assert "repro serve smoke" in package_text
    assert "repro.serve" in package_text  # the wheel must ship the package


def test_campaign_shard_matrix_matches_the_shard_count(workflow):
    """The matrix fan-out and the spec's --shards value are one number: the
    partition depends on the shard count, so a drifting matrix would run
    overlapping (or missing) slices of the campaign."""
    job = workflow["jobs"]["campaign-shard"]
    shards = job["strategy"]["matrix"]["shard"]
    assert shards == list(range(len(shards))), "shard indices must be 0..N-1"
    assert len(shards) >= 2, "the nightly fleet must actually fan out"
    run_text = _run_text(workflow, "campaign-shard")
    assert f"--shards {len(shards)}" in run_text
    assert "--shard ${{ matrix.shard }}" in run_text
    assert "--nightly" in run_text
    assert "--seed-from-date" in run_text
    assert job["strategy"].get("fail-fast") is False, (
        "one failing shard must not cancel the rest of the fleet")


def test_campaign_shard_uploads_indexed_artifacts(workflow):
    uploads = _uploads(workflow, "campaign-shard")
    assert uploads, "shard artifact upload missing"
    named = [str(step.get("with", {}).get("name", "")) for step in uploads]
    assert "campaign-shard-${{ matrix.shard }}" in named
    assert all(step.get("if") == "always()" for step in uploads)


def test_campaign_merge_fans_in_the_shard_artifacts(workflow):
    job = workflow["jobs"]["campaign-merge"]
    assert job.get("needs") == "campaign-shard"
    downloads = [step for step in _steps(workflow, "campaign-merge")
                 if str(step.get("uses", "")
                        ).startswith("actions/download-artifact")]
    assert downloads, "shard artifact download missing"
    assert any(step.get("with", {}).get("pattern") == "campaign-shard-*"
               for step in downloads)
    run_text = _run_text(workflow, "campaign-merge")
    assert "campaign merge" in run_text
    assert "--history campaign-history.jsonl" in run_text
    assert "campaign report" in run_text
    named = [str(step.get("with", {}).get("name", ""))
             for step in _uploads(workflow, "campaign-merge")]
    assert "campaign-merged" in named
    assert "campaign-trend" in named


def test_trend_history_accumulates_via_the_cache(workflow):
    """Both history writers (campaign-merge and bench-smoke) must restore
    the newest history from the cache prefix and save under a fresh
    run-scoped key — and the two keys must differ, because a
    workflow_dispatch run executes both jobs under one run_id."""
    keys = {}
    for job in ("campaign-merge", "bench-smoke"):
        restores = [step for step in _steps(workflow, job)
                    if str(step.get("uses", "")
                           ).startswith("actions/cache/restore")]
        saves = [step for step in _steps(workflow, job)
                 if str(step.get("uses", "")
                        ).startswith("actions/cache/save")]
        assert restores, f"{job}: history cache restore missing"
        assert saves, f"{job}: history cache save missing"
        assert any("campaign-history-" in str(step.get("with", {}
                   ).get("restore-keys", "")) for step in restores), job
        keys[job] = {str(step.get("with", {}).get("key", ""))
                     for step in saves}
    assert not (keys["campaign-merge"] & keys["bench-smoke"]), (
        "merge and bench must save the history under distinct keys")


def test_bench_job_appends_medians_to_the_trend_history(workflow):
    run_text = _run_text(workflow, "bench-smoke")
    assert "campaign bench" in run_text
    assert "--timings benchmark-timings.json" in run_text
    assert "--history campaign-history.jsonl" in run_text
    # Appending must happen after the suite wrote the timings file.
    assert run_text.index("--benchmark-json benchmark-timings.json") \
        < run_text.index("campaign bench")
    named = [str(step.get("with", {}).get("name", ""))
             for step in _uploads(workflow, "bench-smoke")]
    assert "campaign-history" in named


def test_bench_job_uploads_a_perfetto_trace(workflow):
    """bench-smoke must record a traced Table-4 mini sweep through the
    profile CLI and upload the Chrome trace so any CI run can be inspected
    phase-by-phase in Perfetto."""
    run_text = _run_text(workflow, "bench-smoke")
    assert "repro.cli profile sweep" in run_text
    assert "--chrome-out table4-trace.json" in run_text
    trace = [step for step in _uploads(workflow, "bench-smoke")
             if "table4-trace" in str(step.get("with", {}).get("path", ""))]
    assert trace, "Chrome trace artifact upload missing"


def test_coverage_gate_is_wired_and_pinned(workflow):
    """The coverage job must measure src/repro over tests/ only and fail
    under a pinned threshold — and the threshold cannot be quietly dropped
    or lowered below its floor to make a PR pass."""
    run_text = _run_text(workflow, "coverage")
    assert "--cov=repro" in run_text
    assert "pytest tests" in run_text, "coverage must exclude benchmarks/"
    assert "benchmarks" not in run_text
    match = re.search(r"--cov-fail-under=(\d+)", run_text)
    assert match, "--cov-fail-under gate missing from the coverage job"
    assert int(match.group(1)) >= 75, (
        "coverage gate lowered below its floor; raise coverage instead")
    assert "pytest-cov" in run_text


def test_bench_job_runs_the_perf_regression_gate(workflow):
    run_text = _run_text(workflow, "bench-smoke")
    assert "benchmarks/check_timings.py" in run_text
    assert "--benchmark-json benchmark-timings.json" in run_text
    # The gate must run on the same file the suite just wrote.
    assert run_text.index("--benchmark-json benchmark-timings.json") \
        < run_text.index("benchmarks/check_timings.py")


def test_packaging_job_builds_installs_and_imports(workflow):
    run_text = _run_text(workflow, "package")
    assert "python -m build" in run_text
    assert "pip install dist/" in run_text
    assert "import repro" in run_text
    assert "repro.explore" in run_text and "repro.verify" in run_text
    assert "repro.campaign" in run_text
    assert "repro-verify" in run_text and "repro-explore" in run_text
    # The unified dispatcher, the sweep-session layer and the campaign
    # planner must survive packaging: the `repro` script resolves, a
    # one-point batched sweep runs and the nightly partition prints from
    # the installed wheel.
    assert "repro --help" in run_text
    assert "repro sweep" in run_text
    assert "repro campaign plan --nightly" in run_text
    assert "repro.flows.sweep" in run_text


def test_perf_baseline_is_committed_and_well_formed():
    import json

    baseline_path = os.path.join(os.path.dirname(WORKFLOW), "..", "..",
                                 "benchmarks", "baseline_timings.json")
    with open(os.path.normpath(baseline_path), "r", encoding="utf-8") as handle:
        data = json.load(handle)
    assert data["schema"] == 1
    assert isinstance(data["benchmarks"], dict) and data["benchmarks"]
    assert all(isinstance(mean, (int, float)) and mean > 0
               for mean in data["benchmarks"].values())
    # The batched-vs-per-point sweep benchmark must stay under the perf
    # gate: it is the entry that watches the SweepSession delta path.
    assert ("benchmarks/test_bench_kernel_sweep.py::"
            "test_batched_session_matches_and_beats_per_point"
            in data["benchmarks"])
    # Likewise the modulo-scheduler entries: the pipelined flow's wall time
    # and the II sweep stay under the perf gate.
    assert ("benchmarks/test_bench_pipeline.py::test_modulo_scheduling_time"
            in data["benchmarks"])
    assert ("benchmarks/test_bench_pipeline.py::"
            "test_ii_sweep_trades_area_for_throughput" in data["benchmarks"])
