"""The keyed analysis cache: identity, sharing, equivalence and bounds."""

from repro.core.analysis_cache import AnalysisCache, default_cache, design_fingerprint
from repro.core.latency import LatencyAnalysis
from repro.core.opspan import OperationSpans
from repro.core.sequential_slack import compute_sequential_slack
from repro.core.timed_dfg import build_timed_dfg
from repro.flows.pipeline import PointArtifacts
from repro.workloads import fir_design, idct_design


def _delays(design, library):
    return {op.name: (library.fastest_variant(op).delay
                      if op.is_synthesizable else 0.0)
            for op in design.dfg.operations}


# -- design fingerprints ------------------------------------------------------------


def test_fingerprint_is_stable_across_rebuilds():
    a = idct_design(latency=8, rows=1, clock_period=1500.0)
    b = idct_design(latency=8, rows=1, clock_period=1500.0)
    assert a is not b
    assert design_fingerprint(a) == design_fingerprint(b)


def test_fingerprint_ignores_clock_and_pipelining():
    """Artifacts do not depend on the clock period or the II, so neither
    does the key — that is what lets sweep points share bundles."""
    a = idct_design(latency=8, rows=1, clock_period=1500.0)
    b = idct_design(latency=8, rows=1, clock_period=900.0, pipeline_ii=4)
    assert design_fingerprint(a) == design_fingerprint(b)


def test_fingerprint_distinguishes_structures():
    base = idct_design(latency=8, rows=1, clock_period=1500.0)
    assert design_fingerprint(base) != design_fingerprint(
        idct_design(latency=12, rows=1, clock_period=1500.0))
    assert design_fingerprint(base) != design_fingerprint(
        idct_design(latency=8, rows=2, clock_period=1500.0))
    assert design_fingerprint(base) != design_fingerprint(
        idct_design(latency=8, rows=1, width=24, clock_period=1500.0))


def test_fingerprint_detects_structural_growth_after_stamping():
    """The stamped fingerprint is revalidated against an O(1) shape token:
    adding an operation after first use must yield a new identity (and thus
    a correct cache miss), not a stale hit."""
    from repro.ir.operations import OpKind

    design = fir_design(taps=6, latency=4, clock_period=1500.0)
    before = design_fingerprint(design)
    edge = design.cfg.edge_names[0]
    design.dfg.add_op("late_addition", OpKind.ADD, width=16, birth_edge=edge)
    after = design_fingerprint(design)
    assert after != before
    cache = AnalysisCache()
    grown = cache.artifacts(design)
    assert "late_addition" in grown.spans.all_spans()


# -- artifact sharing ---------------------------------------------------------------


def test_structurally_identical_designs_share_artifacts():
    cache = AnalysisCache()
    first = cache.artifacts(idct_design(latency=8, rows=1, clock_period=1500.0))
    second = cache.artifacts(idct_design(latency=8, rows=1, clock_period=900.0))
    assert first is second
    info = cache.cache_info()["artifacts"]
    assert info["hits"] == 1 and info["misses"] == 1


def test_cached_artifacts_equal_fresh_ones():
    design = fir_design(taps=6, latency=4, clock_period=1500.0)
    cached = AnalysisCache().artifacts(design)
    fresh = PointArtifacts.build(design)
    assert cached.spans.all_spans() == fresh.spans.all_spans()
    assert (cached.latency.forward_edge_names
            == fresh.latency.forward_edge_names)
    assert ([(e.src, e.dst, e.weight) for e in cached.timed.edges]
            == [(e.src, e.dst, e.weight) for e in fresh.timed.edges])


# -- pinned spans + timed DFG -------------------------------------------------------


def test_pinned_spans_hit_on_replayed_prefixes():
    cache = AnalysisCache()
    design = fir_design(taps=6, latency=4, clock_period=1500.0)
    latency = LatencyAnalysis(design.cfg)
    edges = latency.forward_edge_names
    some_op = next(op.name for op in design.dfg.operations
                   if op.is_synthesizable)
    pinned = {some_op: edges[0]}
    first = cache.pinned_spans_and_timed(design, latency, pinned, edges[1])
    again = cache.pinned_spans_and_timed(design, latency, dict(pinned), edges[1])
    assert first[0] is again[0] and first[1] is again[1]
    other = cache.pinned_spans_and_timed(design, latency, pinned, edges[2])
    assert other[0] is not first[0]

    fresh = OperationSpans(design, latency=latency, pinned=pinned,
                           not_before=edges[1])
    assert first[0].all_spans() == fresh.all_spans()


# -- sequential slack ---------------------------------------------------------------


def test_cached_slack_equals_direct_computation(library):
    cache = AnalysisCache()
    design = fir_design(taps=6, latency=4, clock_period=1500.0)
    timed = build_timed_dfg(design)
    delays = _delays(design, library)
    for aligned in (False, True):
        direct = compute_sequential_slack(timed, delays, 1500.0, aligned=aligned)
        via_cache = cache.sequential_slack(timed, delays, 1500.0, aligned=aligned)
        assert via_cache.arrival == direct.arrival
        assert via_cache.required == direct.required
        assert via_cache.slack == direct.slack
        # Second call with an equal (but distinct) delay map is a hit.
        assert cache.sequential_slack(timed, dict(delays), 1500.0,
                                      aligned=aligned) is via_cache
    info = cache.cache_info()["sequential_slack"]
    assert info["hits"] == 2 and info["misses"] == 2


def test_slack_keys_include_period_alignment_and_delays(library):
    cache = AnalysisCache()
    design = fir_design(taps=6, latency=4, clock_period=1500.0)
    timed = build_timed_dfg(design)
    delays = _delays(design, library)
    base = cache.sequential_slack(timed, delays, 1500.0)
    assert cache.sequential_slack(timed, delays, 1200.0) is not base
    assert cache.sequential_slack(timed, delays, 1500.0, aligned=True) is not base
    bumped = dict(delays)
    bumped[next(iter(bumped))] += 1.0
    assert cache.sequential_slack(timed, bumped, 1500.0) is not base


# -- bounds + management ------------------------------------------------------------


def test_lru_eviction_is_bounded_and_counted(library):
    cache = AnalysisCache(max_slack=2)
    design = fir_design(taps=6, latency=4, clock_period=1500.0)
    timed = build_timed_dfg(design)
    delays = _delays(design, library)
    for period in (1000.0, 1100.0, 1200.0, 1300.0):
        cache.sequential_slack(timed, delays, period)
    info = cache.cache_info()["sequential_slack"]
    assert info["size"] == 2
    assert info["evictions"] == 2
    # The most recent entries are resident; the oldest was evicted.
    cache.sequential_slack(timed, delays, 1300.0)
    assert cache.cache_info()["sequential_slack"]["hits"] == 1


def test_clear_empties_every_table():
    cache = AnalysisCache()
    cache.artifacts(idct_design(latency=8, rows=1, clock_period=1500.0))
    cache.clear()
    assert all(table["size"] == 0 for table in cache.cache_info().values())


def test_default_cache_is_process_wide():
    assert default_cache() is default_cache()


def test_slack_scheduler_routes_all_lookups_through_injected_cache(library):
    """An injected cache must actually back the scheduler's budgeting and
    span rebuilds — isolation would be meaningless if the hot paths fell
    back to the process-wide cache."""
    from repro.core.slack_scheduler import SlackScheduler
    from repro.workloads import interpolation_design

    cache = AnalysisCache()
    result = SlackScheduler(interpolation_design(), library, 1100.0,
                            cache=cache).run()
    assert result.schedule.is_complete()
    info = cache.cache_info()
    assert info["artifacts"]["misses"] == 1
    assert info["sequential_slack"]["misses"] > 0
