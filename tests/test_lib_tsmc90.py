"""Tests that the tsmc90-like library reproduces the paper's Table 1."""

import pytest

from repro.ir.operations import OpKind
from repro.lib import (
    TABLE1_ADD_16,
    TABLE1_MUL_8x8,
    characterize_class,
    default_kind_models,
    realistic_technology,
    tsmc90_library,
)


def test_table1_multiplier_points_exact(library):
    points = library.tradeoff_table(OpKind.MUL, 8)
    assert points == list(TABLE1_MUL_8x8)


def test_table1_adder_points_exact(library):
    points = library.tradeoff_table(OpKind.ADD, 16)
    assert points == list(TABLE1_ADD_16)


def test_table1_ranges_match_paper_claims(library):
    """Paper: the curves span 2-3x in area and 1.5-6x in delay."""
    for kind, width in ((OpKind.MUL, 8), (OpKind.ADD, 16)):
        points = library.tradeoff_table(kind, width)
        delays = [d for d, _ in points]
        areas = [a for _, a in points]
        assert 1.4 <= max(delays) / min(delays) <= 6.0
        assert 1.7 <= max(areas) / min(areas) <= 3.0


def test_every_kind_and_width_is_characterised(library):
    models = default_kind_models()
    for kind in models:
        widths = library.widths_for_kind(kind)
        assert widths, f"kind {kind} missing from library"
        for width in widths:
            cls = library.class_for(kind, width)
            assert cls.num_grades >= 1
            assert cls.min_delay <= cls.max_delay


def test_characterisation_model_close_to_table1_at_calibration_points():
    models = default_kind_models()
    add16 = characterize_class(OpKind.ADD, 16, models[OpKind.ADD])
    assert add16.fastest.delay == pytest.approx(220.0, rel=0.05)
    assert add16.fastest.area == pytest.approx(556.0, rel=0.05)
    mul8 = characterize_class(OpKind.MUL, 8, models[OpKind.MUL])
    assert mul8.fastest.delay == pytest.approx(430.0, rel=0.05)
    assert mul8.fastest.area == pytest.approx(878.0, rel=0.05)


def test_characterised_curves_are_monotone(library):
    for cls in library.classes:
        delays = [v.delay for v in cls.variants]
        areas = [v.area for v in cls.variants]
        assert delays == sorted(delays)
        assert areas == sorted(areas, reverse=True)


def test_energy_and_leakage_scale_with_area(library):
    cls = library.class_for(OpKind.MUL, 8)
    for v in cls.variants:
        assert v.energy > 0
        assert v.leakage > 0
        assert v.energy == pytest.approx(v.area, rel=0.01)


def test_realistic_technology_has_overheads():
    tech = realistic_technology()
    assert tech.mux_delay_per_stage > 0
    assert tech.register_setup > 0
    assert tech.io_delay > 0


def test_library_without_table1_overrides_uses_model():
    lib = tsmc90_library(include_table1_overrides=False)
    points = lib.tradeoff_table(OpKind.MUL, 8)
    assert points != list(TABLE1_MUL_8x8)
    assert points[0][0] == pytest.approx(430.0, rel=0.05)
