"""Tests of the adaptive exploration driver.

Most tests drive the explorer with a synthetic ``evaluate_batch`` over a
real (but cheap to *build*) FIR factory: designs are constructed for
fingerprinting, while the flow evaluation is replaced by a controlled area
curve.  The end-to-end engine path is exercised once on a small real sweep.
"""

import random

import pytest

from repro.explore.adaptive import AdaptiveExplorer, RefinementPolicy
from repro.explore.pareto import coverage
from repro.explore.store import ResultStore
from repro.workloads import KernelPointFactory, ResizerPointFactory

FIR = KernelPointFactory("fir", params=(("taps", 4),))


def synthetic_evaluator(area_of, calls=None):
    """An ``evaluate_batch`` producing DSEEntry-shaped metrics from a
    latency -> area function (other metrics derived deterministically)."""

    def evaluate(points):
        if calls is not None:
            calls.append([p.latency for p in points])
        records = []
        for p in points:
            area = float(area_of(p.latency))
            flow = {
                "area": area,
                "power": area / 1000.0,
                "throughput": 1.0 / p.latency,
                "latency_steps": p.latency,
                "meets_timing": True,
                "fu_instances": 2,
                "registers": 3,
            }
            records.append({
                "point": {"name": p.name, "latency": p.latency,
                          "pipeline_ii": p.pipeline_ii,
                          "clock_period": p.clock_period},
                "conventional": dict(flow, area=area * 1.2),
                "slack_based": flow,
                "saving_percent": 100.0 * (1 - 1 / 1.2),
            })
        return records

    return evaluate


def explorer(area_of, latencies=range(4, 29), policy=None, calls=None,
             **kwargs):
    return AdaptiveExplorer(
        FIR, library=None, latencies=latencies,
        policy=policy or RefinementPolicy(),
        evaluate_batch=synthetic_evaluator(area_of, calls),
        workload="fir_synth", **kwargs)


class TestAdaptiveOnSyntheticCurves:
    def test_flat_curve_stops_at_the_coarse_grid(self):
        result = explorer(lambda lat: 100.0).explore()
        assert result.engine_evaluations == 5
        assert result.waves == 0
        # Only the lowest latency is non-dominated on a flat curve.
        assert [p.raw_value("latency_steps") for p in result.front] == [4.0]

    def test_descent_triggers_bisection(self):
        result = explorer(lambda lat: 1000.0 / lat).explore()
        assert result.engine_evaluations > 5  # refined beyond the grid
        dense = explorer(lambda lat: 1000.0 / lat).explore_dense()
        assert result.engine_evaluations < dense.engine_evaluations

    def test_non_convex_spike_is_probed_exactly_once(self):
        # Flat except a spike on a coarse-grid member: only the convexity
        # witness can fire, it refines both neighbour intervals, and it
        # must not keep drilling around the spike forever.
        calls = []
        spike = {16: 300.0}
        policy = RefinementPolicy(descent_fraction=10.0,  # descent disabled
                                  convexity_fraction=0.10, width_stop=3)
        result = explorer(lambda lat: spike.get(lat, 100.0),
                          latencies=range(4, 29), policy=policy,
                          calls=calls).explore()
        # Coarse grid {4, 10, 16, 22, 28}; the spike at 16 flags (10, 16)
        # and (16, 22) whose midpoints are evaluated in one extra wave.
        assert calls[0] == [4, 10, 16, 22, 28]
        assert calls[1] == [13, 19]
        assert result.engine_evaluations == 7
        assert result.waves == 1

    def test_max_evaluations_budget_is_a_hard_cap(self):
        policy = RefinementPolicy(max_evaluations=6)
        result = explorer(lambda lat: 1000.0 / lat, policy=policy).explore()
        assert result.engine_evaluations <= 6

    def test_dense_mode_evaluates_every_candidate(self):
        latencies = range(4, 15)
        result = explorer(lambda lat: 1000.0 / lat,
                          latencies=latencies).explore_dense()
        assert result.engine_evaluations == len(list(latencies))
        assert result.evaluated_latencies == list(latencies)


@pytest.mark.parametrize("seed", range(10))
def test_adaptive_never_loses_a_dense_frontier_point_beyond_epsilon(seed):
    """The recovery property on random monotone step curves.

    For monotone non-increasing curves the refinement policy gives a
    provable bound: every dense-grid frontier point is epsilon-dominated
    by an adaptive point with epsilon = (width_stop - 1) latency states
    additively and descent_fraction/(1 - descent_fraction) relatively on
    the area.
    """
    rng = random.Random(seed)
    latencies = list(range(4, 4 + rng.randint(10, 30)))
    # A random non-increasing step curve with plateaus.
    area, curve = rng.uniform(500.0, 2000.0), {}
    for latency in latencies:
        curve[latency] = area
        if rng.random() < 0.4:
            area *= rng.uniform(0.55, 1.0)
    policy = RefinementPolicy(descent_fraction=0.2, width_stop=3)
    adaptive = explorer(curve.__getitem__, latencies=latencies,
                        policy=policy).explore()
    dense = explorer(curve.__getitem__, latencies=latencies,
                     policy=policy).explore_dense()

    epsilon = (float(policy.width_stop - 1),
               ("rel", policy.descent_fraction / (1 - policy.descent_fraction)))
    assert coverage(adaptive.front, dense.front, epsilon) == 1.0
    assert adaptive.engine_evaluations <= dense.engine_evaluations


class TestConstructionValidation:
    def test_unknown_objective_fails_before_any_evaluation(self):
        calls = []
        with pytest.raises(Exception, match="unknown objective"):
            explorer(lambda lat: 100.0, calls=calls,
                     objectives=("latency_steps", "aera"))
        assert calls == []  # no sweep cost was paid

    def test_live_only_objective_is_rejected_with_guidance(self):
        with pytest.raises(Exception, match="runtime_s"):
            explorer(lambda lat: 100.0, objectives=("area", "runtime_s"))

    def test_guide_objective_is_validated_too(self):
        with pytest.raises(Exception, match="unknown objective"):
            explorer(lambda lat: 100.0, guide_objective="frobnication")


class TestReuse:
    def test_store_resume_across_sessions(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        first = explorer(lambda lat: 1000.0 / lat,
                         store=ResultStore(path)).explore()
        assert first.engine_evaluations > 0
        again = explorer(lambda lat: 1000.0 / lat,
                         store=ResultStore(path)).explore()
        assert again.engine_evaluations == 0
        assert again.restored == len(first.evaluated_latencies)
        assert again.evaluated_latencies == first.evaluated_latencies

    def test_dense_after_adaptive_only_pays_the_difference(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        latencies = range(4, 21)
        adaptive = explorer(lambda lat: 1000.0 / lat, latencies=latencies,
                            store=ResultStore(path)).explore()
        dense = explorer(lambda lat: 1000.0 / lat, latencies=latencies,
                         store=ResultStore(path)).explore_dense()
        assert dense.restored == len(adaptive.evaluated_latencies)
        assert dense.engine_evaluations == \
            len(list(latencies)) - len(adaptive.evaluated_latencies)

    def test_margin_change_invalidates_the_store_key(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        explorer(lambda lat: 100.0, store=ResultStore(path),
                 margin_fraction=0.05).explore()
        other = explorer(lambda lat: 100.0, store=ResultStore(path),
                         margin_fraction=0.10).explore()
        assert other.restored == 0
        assert other.engine_evaluations == 5

    def test_structurally_identical_points_collapse_to_one_evaluation(self):
        """The resizer's structure ignores the latency knob, so a dense
        latency sweep needs exactly one flow evaluation."""
        calls = []
        result = AdaptiveExplorer(
            ResizerPointFactory(), library=None, latencies=range(4, 10),
            evaluate_batch=synthetic_evaluator(lambda lat: 123.0, calls),
            workload="resizer").explore_dense()
        assert result.engine_evaluations == 1
        assert result.deduplicated == 5
        assert len(calls) == 1 and len(calls[0]) == 1


class TestIIAxis:
    """The II-vs-area frontier: sweeping the initiation interval instead
    of the latency."""

    def _ii_evaluator(self, area_of_ii, calls=None):
        def evaluate(points):
            if calls is not None:
                calls.append([p.pipeline_ii for p in points])
            base = synthetic_evaluator(lambda lat: 0.0)(points)
            for record, p in zip(base, points):
                area = float(area_of_ii(p.pipeline_ii))
                record["slack_based"]["area"] = area
                record["conventional"]["area"] = area * 1.2
            return base
        return evaluate

    def test_ii_axis_sweeps_pipelined_points_at_one_latency(self):
        calls = []
        result = AdaptiveExplorer(
            FIR, library=None, latencies=[8], ii_values=range(1, 9),
            objectives=("initiation_interval", "area"),
            evaluate_batch=self._ii_evaluator(lambda ii: 1000.0 / ii, calls),
            workload="fir_ii").explore_dense()
        assert result.axis == "ii"
        assert result.evaluated_latencies == list(range(1, 9))
        assert all(ii is not None for wave in calls for ii in wave)
        # Lower II costs area, so every point is Pareto-optimal here.
        assert len(result.front) == 8
        front_iis = sorted(p.raw_value("initiation_interval")
                           for p in result.front)
        assert front_iis == [float(ii) for ii in range(1, 9)]

    def test_ii_axis_refines_like_the_latency_axis(self):
        result = AdaptiveExplorer(
            FIR, library=None, latencies=[8], ii_values=range(1, 17),
            objectives=("initiation_interval", "area"),
            evaluate_batch=self._ii_evaluator(lambda ii: 1000.0 / ii),
            workload="fir_ii").explore()
        dense = AdaptiveExplorer(
            FIR, library=None, latencies=[8], ii_values=range(1, 17),
            objectives=("initiation_interval", "area"),
            evaluate_batch=self._ii_evaluator(lambda ii: 1000.0 / ii),
            workload="fir_ii").explore_dense()
        assert result.engine_evaluations < dense.engine_evaluations

    def test_ii_axis_requires_exactly_one_latency(self):
        with pytest.raises(Exception, match="one fixed latency"):
            AdaptiveExplorer(FIR, library=None, latencies=[6, 8],
                             ii_values=range(1, 4))
        with pytest.raises(Exception, match=">= 1"):
            AdaptiveExplorer(FIR, library=None, latencies=[8],
                             ii_values=[0, 1])

    def test_ii_axis_end_to_end_trades_ii_against_area(self, library):
        """Real pipelined flows: shrinking the II must cost FU area."""
        result = AdaptiveExplorer(
            FIR, library, latencies=[6], ii_values=[1, 2, 3, 6],
            objectives=("initiation_interval", "area"),
            workload="fir_ii",
            engine_kwargs={"executor": "serial"},
        ).explore_dense()
        assert result.axis == "ii"
        assert len(result.front) >= 2
        by_ii = sorted(result.front,
                       key=lambda p: p.raw_value("initiation_interval"))
        areas = [p.raw_value("area") for p in by_ii]
        assert areas == sorted(areas, reverse=True)
        assert areas[0] > areas[-1]


class TestEngineIntegration:
    def test_real_engine_small_sweep_with_store(self, library, tmp_path):
        """End to end through DSEEngine on a small real FIR sweep."""
        path = str(tmp_path / "fir.jsonl")
        result = AdaptiveExplorer(
            FIR, library, latencies=range(4, 9),
            policy=RefinementPolicy(coarse_points=3, width_stop=2),
            store=ResultStore(path), workload="fir",
            engine_kwargs={"executor": "serial"},
        ).explore()
        assert result.engine_evaluations >= 3
        assert result.front  # a real frontier came out
        for point in result.front:
            assert point.raw_value("area") > 0
        # Every evaluation was persisted and resumes for free.
        rerun = AdaptiveExplorer(
            FIR, library, latencies=range(4, 9),
            policy=RefinementPolicy(coarse_points=3, width_stop=2),
            store=ResultStore(path), workload="fir",
            engine_kwargs={"executor": "serial"},
        ).explore()
        assert rerun.engine_evaluations == 0
        assert rerun.evaluated_latencies == result.evaluated_latencies
