"""Smoke tests of the package-level API surface."""

import pytest

import repro
import repro.core as core
from repro.errors import (
    BindingError,
    ElaborationError,
    InfeasibleDesignError,
    IRError,
    LibraryError,
    ParseError,
    ReproError,
    SchedulingError,
    TimingError,
)


def test_version_is_exposed():
    assert repro.__version__
    assert repro.__version__.count(".") == 2


def test_exception_hierarchy():
    for exc in (IRError, ElaborationError, LibraryError, TimingError,
                SchedulingError, BindingError, InfeasibleDesignError):
        assert issubclass(exc, ReproError)
    assert issubclass(InfeasibleDesignError, SchedulingError)
    assert issubclass(ParseError, ElaborationError)


def test_parse_error_formats_location():
    error = ParseError("unexpected token", line=3, column=7)
    assert "line 3" in str(error)
    assert "column 7" in str(error)
    assert error.line == 3 and error.column == 7


def test_core_lazy_exports():
    # SlackScheduler is loaded lazily to keep the core/sched import graph
    # acyclic; both the class and its result type must be reachable.
    assert core.SlackScheduler is not None
    assert core.SlackScheduleResult is not None
    with pytest.raises(AttributeError):
        core.does_not_exist  # noqa: B018


def test_top_level_reexports():
    # The curated public names promised by repro.__all__ must resolve.
    for name in repro.__all__:
        assert getattr(repro, name) is not None


#: The pinned top-level surface.  Removing or renaming any of these is a
#: breaking API change and must be deliberate (update this list in the same
#: change, with a deprecation path for the old name).
PINNED_SURFACE = {
    # errors
    "ReproError", "IRError", "ElaborationError", "LibraryError",
    "TimingError", "SchedulingError", "BindingError", "InfeasibleDesignError",
    "DeadlineExceeded",
    # flows / session API
    "SweepSession", "SweepStats", "sweep_plan",
    "DesignPoint", "DSEEntry", "DSEResult",
    "evaluate_point", "run_dse", "idct_design_points", "latency_grid",
    "DSEEngine", "PointArtifacts", "conventional_flow", "slack_based_flow",
    # exploration
    "AdaptiveExplorer", "RefinementPolicy", "ResultStore",
    # campaign layer
    "CampaignSpec", "plan_shards", "run_shard", "merge_shards",
    "trend_report",
    # serve layer
    "DSEService", "JobSpec", "MemoCache", "RetryPolicy",
    # verification
    "ORACLES", "Oracle", "oracle",
    # observability
    "Tracer", "tracing", "cache_stats", "profile_report",
}


def test_pinned_surface_is_promised_and_resolves():
    missing = PINNED_SURFACE - set(repro.__all__)
    assert not missing, f"pinned names missing from repro.__all__: {missing}"
    for name in sorted(PINNED_SURFACE):
        assert getattr(repro, name) is not None
    # Lazy resolution caches into the module namespace (PEP 562 fast path).
    assert "SweepSession" in vars(repro)


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.definitely_not_an_api  # noqa: B018


def test_dir_lists_lazy_names():
    listing = dir(repro)
    assert "SweepSession" in listing
    assert "AdaptiveExplorer" in listing
