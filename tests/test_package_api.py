"""Smoke tests of the package-level API surface."""

import pytest

import repro
import repro.core as core
from repro.errors import (
    BindingError,
    ElaborationError,
    InfeasibleDesignError,
    IRError,
    LibraryError,
    ParseError,
    ReproError,
    SchedulingError,
    TimingError,
)


def test_version_is_exposed():
    assert repro.__version__
    assert repro.__version__.count(".") == 2


def test_exception_hierarchy():
    for exc in (IRError, ElaborationError, LibraryError, TimingError,
                SchedulingError, BindingError, InfeasibleDesignError):
        assert issubclass(exc, ReproError)
    assert issubclass(InfeasibleDesignError, SchedulingError)
    assert issubclass(ParseError, ElaborationError)


def test_parse_error_formats_location():
    error = ParseError("unexpected token", line=3, column=7)
    assert "line 3" in str(error)
    assert "column 7" in str(error)
    assert error.line == 3 and error.column == 7


def test_core_lazy_exports():
    # SlackScheduler is loaded lazily to keep the core/sched import graph
    # acyclic; both the class and its result type must be reachable.
    assert core.SlackScheduler is not None
    assert core.SlackScheduleResult is not None
    with pytest.raises(AttributeError):
        core.does_not_exist  # noqa: B018


def test_top_level_reexports():
    # The curated public names promised by repro.__all__ must resolve.
    for name in repro.__all__:
        assert getattr(repro, name) is not None
