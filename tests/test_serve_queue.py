"""Tests of the persistent job queue: FIFO order, journal, recovery."""

import pytest

from repro.core.jsonl import load_records
from repro.errors import ReproError
from repro.serve.fakes import sweep_payload
from repro.serve.jobs import JobSpec
from repro.serve.queue import JobQueue


def _spec(latencies=(6, 8), tenant="default"):
    return JobSpec("sweep", sweep_payload(latencies=latencies), tenant=tenant)


class TestLifecycle:
    def test_submit_claim_finish_happy_path(self):
        queue = JobQueue()
        record = queue.submit(_spec())
        assert record.state == "pending"
        assert record.job_id == "job-000001"

        claimed = queue.claim()
        assert claimed is record and claimed.state == "running"

        done = queue.finish(record.job_id, "done", result={"points": []})
        assert done.state == "done" and done.result == {"points": []}

    def test_claim_is_fifo(self):
        queue = JobQueue()
        ids = [queue.submit(_spec(latencies=(lat,))).job_id
               for lat in (6, 8, 10)]
        assert [queue.claim().job_id for _ in ids] == ids

    def test_claim_empty_polls_none(self):
        assert JobQueue().claim(timeout=0.0) is None
        assert JobQueue().claim(timeout=0.01) is None

    def test_finish_requires_running(self):
        queue = JobQueue()
        record = queue.submit(_spec())
        with pytest.raises(ReproError):
            queue.finish(record.job_id, "done")
        queue.claim()
        queue.finish(record.job_id, "done")
        with pytest.raises(ReproError):  # already terminal
            queue.finish(record.job_id, "failed")

    def test_finish_rejects_non_terminal_states(self):
        queue = JobQueue()
        record = queue.submit(_spec())
        queue.claim()
        with pytest.raises(ReproError):
            queue.finish(record.job_id, "pending")
        with pytest.raises(ReproError):
            queue.finish(record.job_id, "cancelled")

    def test_cancel_pending_only(self):
        queue = JobQueue()
        record = queue.submit(_spec())
        cancelled = queue.cancel(record.job_id)
        assert cancelled.state == "cancelled"
        assert queue.claim() is None  # cancelled job left the pending deque

        running = queue.submit(_spec(latencies=(10,)))
        queue.claim()
        with pytest.raises(ReproError):
            queue.cancel(running.job_id)

    def test_unknown_job_raises(self):
        queue = JobQueue()
        with pytest.raises(ReproError):
            queue.finish("job-999999", "done")
        with pytest.raises(ReproError):
            queue.cancel("job-999999")
        assert queue.get("job-999999") is None

    def test_counts_and_len(self):
        queue = JobQueue()
        a = queue.submit(_spec(latencies=(6,)))
        queue.submit(_spec(latencies=(8,)))
        queue.claim()
        queue.finish(a.job_id, "done")
        assert queue.counts() == {"done": 1, "pending": 1}
        assert len(queue) == 2
        assert queue.pending_count() == 1


class TestPersistence:
    def test_journal_holds_full_records_per_transition(self, tmp_path):
        path = str(tmp_path / "queue.jsonl")
        queue = JobQueue(path)
        record = queue.submit(_spec())
        queue.claim()
        queue.finish(record.job_id, "done", result={"points": []})

        lines, skipped = load_records(path, lambda r: True)
        assert skipped == 0
        assert [line["state"] for line in lines] == ["pending", "running",
                                                     "done"]
        assert all(line["job_id"] == record.job_id for line in lines)

    def test_reload_keeps_last_record_per_job(self, tmp_path):
        path = str(tmp_path / "queue.jsonl")
        queue = JobQueue(path)
        done = queue.submit(_spec(latencies=(6,)))
        queue.claim()
        queue.finish(done.job_id, "done", result={"points": [1]})
        pending = queue.submit(_spec(latencies=(8,)))

        again = JobQueue(path)
        assert again.skipped_lines == 0
        assert len(again) == 2
        assert again.get(done.job_id).state == "done"
        assert again.get(done.job_id).result == {"points": [1]}
        assert again.claim().job_id == pending.job_id

    def test_running_jobs_recover_to_pending_in_seq_order(self, tmp_path):
        path = str(tmp_path / "queue.jsonl")
        queue = JobQueue(path)
        first = queue.submit(_spec(latencies=(6,)))
        second = queue.submit(_spec(latencies=(8,)))
        queue.claim()
        queue.claim()  # both running; the "process" now dies

        recovered = JobQueue(path)
        assert recovered.counts() == {"pending": 2}
        assert recovered.claim().job_id == first.job_id
        assert recovered.claim().job_id == second.job_id

    def test_seq_continues_after_reload(self, tmp_path):
        path = str(tmp_path / "queue.jsonl")
        queue = JobQueue(path)
        queue.submit(_spec(latencies=(6,)))
        again = JobQueue(path)
        newer = again.submit(_spec(latencies=(8,)))
        assert newer.job_id == "job-000002"

    def test_foreign_lines_are_counted_not_fatal(self, tmp_path):
        from repro.core.jsonl import append_record

        path = str(tmp_path / "queue.jsonl")
        queue = JobQueue(path)
        queue.submit(_spec())
        append_record(path, {"schema": 99, "not": "a job"})
        again = JobQueue(path)
        assert len(again) == 1
        assert again.skipped_lines == 1
