"""Shrinking: delta-debugging guarantees and the injected-oracle mutation test."""

import pytest

from repro.ir.operations import OpKind
from repro.ir.validate import validate_design
from repro.verify.oracles import Oracle
from repro.verify.runner import run_fuzz
from repro.verify.scenarios import generate_scenario
from repro.verify.shrink import _candidates, shrink_spec


def _has_mul(spec):
    return any(op.kind is OpKind.MUL
               for op in spec.design().dfg.operations)


def _mul_seeds(count):
    seeds = [seed for seed in range(60) if _has_mul(generate_scenario(seed))]
    assert len(seeds) >= count
    return seeds[:count]


# -- delta-debugging guarantees ------------------------------------------------------


@pytest.mark.parametrize("seed", _mul_seeds(6))
def test_shrunk_spec_still_fails_and_is_no_larger(seed):
    """The two contractual properties of `repro-verify shrink`: the output
    (a) still fails the predicate and (b) is no larger than the input."""
    spec = generate_scenario(seed)
    result = shrink_spec(spec, _has_mul, max_evaluations=500)
    assert _has_mul(result.spec)                                   # (a)
    assert result.spec.num_design_ops() <= spec.num_design_ops()   # (b)
    assert not result.exhausted_budget


def test_shrinking_is_deterministic():
    seed = _mul_seeds(1)[0]
    spec = generate_scenario(seed)
    first = shrink_spec(spec, _has_mul, max_evaluations=500)
    second = shrink_spec(spec, _has_mul, max_evaluations=500)
    assert first.spec == second.spec
    assert first.accepted_steps == second.accepted_steps
    assert first.evaluations == second.evaluations


def test_every_candidate_is_a_buildable_spec():
    """Candidates never need repair: the modulo-index encoding keeps any
    mutation valid, which is what lets the shrinker explore aggressively."""
    for seed in range(6):
        spec = generate_scenario(seed)
        for description, candidate in _candidates(spec):
            problems = [message
                        for message in validate_design(candidate.design())
                        if "dangling" not in message]
            assert problems == [], description
            assert candidate.num_design_ops() <= spec.num_design_ops()


def test_shrink_budget_is_honoured():
    spec = generate_scenario(_mul_seeds(1)[0])
    result = shrink_spec(spec, _has_mul, max_evaluations=3)
    assert result.evaluations <= 3


def test_shrink_reaches_a_minimal_mul_reproducer():
    """A mul-seeking predicate must shrink to read + mul + write."""
    spec = generate_scenario(_mul_seeds(2)[-1])
    result = shrink_spec(spec, _has_mul, max_evaluations=500)
    assert result.spec.num_design_ops() == 3
    kinds = sorted(op.kind.value
                   for op in result.spec.design().dfg.operations)
    assert kinds == ["mul", "read", "write"]


# -- the mutation test of the acceptance criteria ------------------------------------


def test_injected_oracle_violation_is_caught_and_shrunk_small():
    """End-to-end mutation test: fuzz with a deliberately-broken oracle
    (claims no design may contain a multiplier), assert the violation is
    caught by the loop and the recorded reproducer shrinks to at most 8
    operations."""

    def no_multipliers(spec, library):
        if _has_mul(spec):
            return "injected: design contains a multiplier"
        return ""

    injected = Oracle(name="injected-mul-ban",
                      description="mutation-test oracle",
                      check=no_multipliers)
    # Drive the runner directly with the injected oracle via monkey-free
    # plumbing: temporarily register it under a unique name.
    from repro.verify import oracles as oracles_mod

    oracles_mod.ORACLES[injected.name] = injected
    try:
        report = run_fuzz(seed=0, iterations=30,
                          oracle_names=[injected.name],
                          shrink=True, shrink_evaluations=500)
    finally:
        del oracles_mod.ORACLES[injected.name]

    assert report.failures, "the injected violation was never caught"
    failure = report.failures[0]
    assert failure.oracle == injected.name
    assert failure.shrunk is not None
    reproducer = failure.reproducer
    assert reproducer.num_design_ops() <= 8
    assert _has_mul(reproducer)
    # The reproducer replays from its serialised form alone.
    from repro.verify.scenarios import ScenarioSpec

    replayed = ScenarioSpec.from_dict(reproducer.to_dict())
    assert no_multipliers(replayed, None) != ""


def test_crashing_engine_is_recorded_not_fatal():
    """An exception escaping an oracle must become a recorded violation
    (with the traceback in the details), never abort the fuzz loop."""

    def crashes_on_mul(spec, library):
        if _has_mul(spec):
            raise IndexError("synthetic engine crash")
        return ""

    from repro.verify import oracles as oracles_mod

    name = "injected-crasher"
    oracles_mod.ORACLES[name] = Oracle(name=name, description="crash test",
                                       check=crashes_on_mul)
    try:
        report = run_fuzz(seed=0, iterations=10, oracle_names=[name],
                          shrink=True, shrink_evaluations=100)
    finally:
        del oracles_mod.ORACLES[name]

    assert report.iterations == 10  # the loop survived every crash
    assert report.failures
    failure = report.failures[0]
    assert "crash: IndexError" in failure.details
    assert failure.shrunk is not None
    assert failure.reproducer.num_design_ops() <= 8


def test_spec_design_memo_is_shared_but_excluded_from_pickle_and_eq():
    import pickle

    spec = generate_scenario(3)
    first = spec.design()
    assert spec.design() is first  # memoized
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec           # eq ignores the memo
    assert "_design" not in clone.__dict__  # memo not shipped
    assert clone.design() is not first
