"""Unit tests for resource variants and classes."""

import pytest

from repro.errors import LibraryError
from repro.ir.operations import OpKind
from repro.lib.resource import ResourceClass, ResourceVariant


def variant(delay, area, grade=0):
    return ResourceVariant(name=f"v{grade}", kind=OpKind.ADD, width=16,
                           delay=delay, area=area, grade=grade)


def test_variant_validation():
    with pytest.raises(LibraryError):
        ResourceVariant(name="bad", kind=OpKind.ADD, width=8, delay=0.0, area=10.0)
    with pytest.raises(LibraryError):
        ResourceVariant(name="bad", kind=OpKind.ADD, width=8, delay=10.0, area=0.0)


def test_class_orders_variants_fastest_first():
    cls = ResourceClass(OpKind.ADD, 16,
                        [variant(400, 254, 1), variant(220, 556, 0), variant(940, 210, 2)])
    assert [v.delay for v in cls.variants] == [220, 400, 940]
    assert cls.fastest.delay == 220
    assert cls.slowest.delay == 940
    assert cls.min_delay == 220 and cls.max_delay == 940


def test_dominated_variants_are_dropped():
    # The 500 ps / 600 area point is both slower and bigger than 400/254.
    cls = ResourceClass(OpKind.ADD, 16,
                        [variant(220, 556), variant(400, 254), variant(500, 600)])
    assert len(cls.variants) == 2
    assert all(v.area <= 556 for v in cls.variants)


def test_cheapest_within_budget():
    cls = ResourceClass(OpKind.ADD, 16,
                        [variant(220, 556), variant(400, 254), variant(940, 210)])
    assert cls.cheapest_within(1000).delay == 940
    assert cls.cheapest_within(500).delay == 400
    assert cls.cheapest_within(250).delay == 220
    # Budget below the fastest delay falls back to the fastest grade.
    assert cls.cheapest_within(100).delay == 220


def test_next_faster_and_slower():
    cls = ResourceClass(OpKind.ADD, 16,
                        [variant(220, 556), variant(400, 254), variant(940, 210)])
    middle = cls.variants[1]
    assert cls.next_faster(middle).delay == 220
    assert cls.next_slower(middle).delay == 940
    assert cls.next_faster(cls.fastest) is None
    assert cls.next_slower(cls.slowest) is None


def test_area_sensitivity_is_positive_until_slowest():
    cls = ResourceClass(OpKind.ADD, 16,
                        [variant(220, 556), variant(400, 254), variant(940, 210)])
    assert cls.area_sensitivity(cls.fastest) == pytest.approx((556 - 254) / 180.0)
    assert cls.area_sensitivity(cls.slowest) == 0.0


def test_empty_class_rejected():
    with pytest.raises(LibraryError):
        ResourceClass(OpKind.ADD, 16, [])
