"""Shared fixtures for the test suite."""

import os
import sys

import pytest

# Allow running the tests from a source checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.lib import tsmc90_library  # noqa: E402
from repro.workloads import (  # noqa: E402
    fir_design,
    idct_design,
    interpolation_design,
    resizer_design,
    resizer_main_design,
)


@pytest.fixture(scope="session")
def library():
    """The TSMC-90nm-like library shared by all tests."""
    return tsmc90_library()


@pytest.fixture(scope="session")
def interpolation():
    """The paper's Section II interpolation design (7 muls, 4 adds, 3 states)."""
    return interpolation_design()


@pytest.fixture(scope="session")
def resizer_main():
    """The Fig. 5 "main computation" design (8 operations)."""
    return resizer_main_design()


@pytest.fixture(scope="session")
def resizer_full():
    """The full Fig. 4 resizer design."""
    return resizer_design()


@pytest.fixture(scope="session")
def small_idct():
    """A small (2-row) IDCT design used for flow-level tests."""
    return idct_design(latency=12, rows=2, clock_period=1500.0)


@pytest.fixture(scope="session")
def small_fir():
    """A small FIR design."""
    return fir_design(taps=6, latency=4, clock_period=1500.0)
