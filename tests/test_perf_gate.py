"""Unit tests of the perf-regression comparator (benchmarks/check_timings.py)."""

import importlib.util
import json
import os

import pytest

_SCRIPT = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "benchmarks", "check_timings.py")

_spec = importlib.util.spec_from_file_location("check_timings", _SCRIPT)
check_timings = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_spec and check_timings)


def _benchmark_json(path, means):
    payload = {"benchmarks": [
        {"fullname": name, "stats": {"mean": mean}}
        for name, mean in means.items()
    ]}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return str(path)


def test_compare_passes_within_tolerance():
    baseline = {"a": 1.0, "b": 2.0, "c": 0.5}
    current = {"a": 1.1, "b": 2.1, "c": 0.55}
    regressions, notes = check_timings.compare(current, baseline)
    assert regressions == []
    assert any("normalization" in note for note in notes)


def test_compare_flags_a_single_regressed_benchmark():
    baseline = {"a": 1.0, "b": 2.0, "c": 0.5}
    current = {"a": 1.0, "b": 2.0, "c": 0.8}  # c regressed 60%
    regressions, _ = check_timings.compare(current, baseline)
    assert len(regressions) == 1 and regressions[0].startswith("c:")


def test_compare_normalizes_out_machine_speed():
    """A uniformly somewhat-slower runner must not trip the gate; one
    benchmark regressing on top of the uniform slowdown must."""
    baseline = {"a": 1.0, "b": 2.0, "c": 0.5, "d": 4.0}
    uniformly_slow = {name: mean * 1.4 for name, mean in baseline.items()}
    regressions, _ = check_timings.compare(uniformly_slow, baseline)
    assert regressions == []

    uniformly_slow["b"] *= 1.5  # 50% on top of the machine factor
    regressions, _ = check_timings.compare(uniformly_slow, baseline)
    assert len(regressions) == 1 and regressions[0].startswith("b:")


def test_compare_machine_factor_backstop_catches_correlated_regressions():
    """A correlated slowdown of every gated benchmark cannot hide inside
    the median normalization: beyond the machine-factor bound the gate
    fails with a suite-wide drift message."""
    baseline = {"a": 1.0, "b": 2.0, "c": 0.5, "d": 4.0}
    all_regressed = {name: mean * 3.0 for name, mean in baseline.items()}
    regressions, _ = check_timings.compare(all_regressed, baseline)
    assert len(regressions) == 1
    assert "suite-wide drift" in regressions[0]
    # A genuinely faster suite trips the same bound (stale baseline).
    all_faster = {name: mean / 3.0 for name, mean in baseline.items()}
    regressions, _ = check_timings.compare(all_faster, baseline)
    assert any("suite-wide drift" in line for line in regressions)


def test_compare_reports_side_only_benchmarks_as_notes():
    regressions, notes = check_timings.compare(
        {"new": 1.0, "shared": 1.0}, {"gone": 1.0, "shared": 1.0})
    assert regressions == []
    assert any("new benchmark" in note for note in notes)
    assert any("missing from this run" in note for note in notes)


def test_compare_improvements_are_notes_not_failures():
    baseline = {"a": 1.0, "b": 1.0, "c": 1.0}
    current = {"a": 1.0, "b": 1.0, "c": 0.3}
    regressions, notes = check_timings.compare(current, baseline)
    assert regressions == []
    assert any("improvement" in note for note in notes)


def test_main_gates_on_a_real_regression(tmp_path, capsys):
    baseline_path = str(tmp_path / "baseline.json")
    check_timings.write_baseline(baseline_path,
                                 {"a": 1.0, "b": 2.0, "c": 0.5})
    current = _benchmark_json(tmp_path / "current.json",
                              {"a": 1.0, "b": 2.0, "c": 1.0})
    code = check_timings.main([current, "--baseline", baseline_path])
    out = capsys.readouterr().out
    assert code == 1
    assert "REGRESSION c:" in out


def test_main_passes_and_update_baseline_path(tmp_path, capsys, monkeypatch):
    baseline_path = str(tmp_path / "baseline.json")
    current = _benchmark_json(tmp_path / "current.json", {"a": 1.0, "b": 2.0})

    # No baseline yet: informational pass.
    assert check_timings.main([current, "--baseline", baseline_path]) == 0
    assert "no baseline" in capsys.readouterr().out

    # REPRO_UPDATE_BASELINE=1 writes it.
    monkeypatch.setenv("REPRO_UPDATE_BASELINE", "1")
    assert check_timings.main([current, "--baseline", baseline_path]) == 0
    capsys.readouterr()
    monkeypatch.delenv("REPRO_UPDATE_BASELINE")

    # And the same run now passes against it.
    assert check_timings.main([current, "--baseline", baseline_path]) == 0
    assert "within" in capsys.readouterr().out
    data = json.load(open(baseline_path, encoding="utf-8"))
    assert data["schema"] == check_timings.BASELINE_SCHEMA
    assert data["benchmarks"] == {"a": 1.0, "b": 2.0}


def test_main_tolerates_empty_benchmark_json(tmp_path, capsys):
    current = _benchmark_json(tmp_path / "current.json", {})
    assert check_timings.main([current]) == 0
    assert "nothing to check" in capsys.readouterr().out


def test_load_baseline_rejects_unknown_schema(tmp_path):
    path = str(tmp_path / "baseline.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"schema": 99, "benchmarks": {"a": 1.0}}, handle)
    assert check_timings.load_baseline(path) == {}


@pytest.mark.parametrize("values,expected", [
    ([1.0], 1.0),
    ([1.0, 3.0], 2.0),
    ([5.0, 1.0, 3.0], 3.0),
])
def test_median(values, expected):
    assert check_timings._median(values) == expected
