"""Execute every example script in-process so examples cannot rot silently.

Each ``examples/*.py`` is run via :mod:`runpy` with ``run_name="__main__"``
and (where the script takes CLI arguments) a small-scale ``sys.argv``, so
the whole suite stays fast while still exercising the real code paths the
README points new users at.  A new example without an entry in ``ARGS``
still runs — with no arguments — so simply adding a file keeps it covered.
"""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")

#: Small-scale CLI arguments per example (keep the suite quick).
ARGS = {
    "idct_dse.py": ["1", "1"],          # rows=1, one worker
    "explore_pareto.py": ["1", "8:20"],  # rows=1, short latency range
    "verify_fuzz.py": ["10", "0"],       # 10 fuzz iterations, seed 0
}


def example_scripts():
    return sorted(name for name in os.listdir(EXAMPLES_DIR)
                  if name.endswith(".py"))


def test_every_example_is_known_or_at_least_discovered():
    scripts = example_scripts()
    assert scripts, "examples/ directory went missing or empty"
    # The four seed examples plus the exploration example must exist.
    for expected in ("quickstart.py", "idct_dse.py", "custom_kernel.py",
                     "interpolation_tradeoff.py", "explore_pareto.py"):
        assert expected in scripts


@pytest.mark.parametrize("script", example_scripts())
def test_example_runs_to_completion(script, capsys, monkeypatch):
    path = os.path.join(EXAMPLES_DIR, script)
    monkeypatch.setattr(sys, "argv", [path] + ARGS.get(script, []))
    # Examples must not leak state into each other: run in a fresh module
    # namespace; stdout is captured (and asserted non-empty — an example
    # that prints nothing is broken as documentation).
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"
