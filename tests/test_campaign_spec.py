"""CampaignSpec: serialisation round-trips and the shard partition."""

import json

import pytest

from repro.campaign.spec import (
    CampaignSpec,
    ExploreJob,
    SweepJob,
    default_nightly_spec,
    plan_shards,
)
from repro.errors import ReproError


def small_spec(shards=3):
    return CampaignSpec(
        name="unit",
        seed=11,
        shards=shards,
        fuzz_iterations=10,
        fuzz_max_segments=4,
        sweeps=(
            SweepJob(workload="idct", latencies=(8, 6, 7),
                     clocks=(1500.0, 2000.0), params=(("rows", 1),)),
            SweepJob(workload="fir", latencies=(4, 5), ii_values=(2, 1),
                     params=(("taps", 4),)),
        ),
        explorations=(
            ExploreJob(workload="idct", latencies=(8, 10, 12),
                       params=(("rows", 1),)),
        ),
    )


def test_spec_round_trips_through_json():
    spec = small_spec()
    data = json.loads(json.dumps(spec.to_dict()))
    assert CampaignSpec.from_dict(data) == spec


def test_spec_save_load_round_trip(tmp_path):
    spec = small_spec()
    path = str(tmp_path / "spec.json")
    spec.save(path)
    assert CampaignSpec.load(path) == spec


def test_spec_load_rejects_bad_json_and_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(ReproError):
        CampaignSpec.load(str(path))
    path.write_text(json.dumps({"schema": 99}), encoding="utf-8")
    with pytest.raises(ReproError):
        CampaignSpec.load(str(path))


def test_spec_validation_errors():
    with pytest.raises(ReproError):
        CampaignSpec(shards=0)
    with pytest.raises(ReproError):
        CampaignSpec(fuzz_iterations=-1)
    with pytest.raises(ReproError):
        CampaignSpec(sweeps=(SweepJob(workload="nope", latencies=(8,)),))
    with pytest.raises(ReproError):
        SweepJob(workload="idct", latencies=())
    with pytest.raises(ReproError):
        SweepJob(workload="idct", latencies=(8,), ii_values=(0,))


def test_sweep_points_are_canonically_ordered():
    job = SweepJob(workload="idct", latencies=(8, 6), clocks=(2000.0, 1500.0),
                   ii_values=(2, 1), params=(("rows", 1),))
    names = [point.name for point in job.points()]
    assert names == [
        "idct_L6_T1500_ii1", "idct_L6_T1500_ii2",
        "idct_L6_T2000_ii1", "idct_L6_T2000_ii2",
        "idct_L8_T1500_ii1", "idct_L8_T1500_ii2",
        "idct_L8_T2000_ii1", "idct_L8_T2000_ii2",
    ]
    assert job.scheduling == "pipeline"
    block = SweepJob(workload="idct", latencies=(6,), params=(("rows", 1),))
    assert block.scheduling == "block"


@pytest.mark.parametrize("shards", [1, 2, 3, 5, 16])
def test_partition_is_total_and_disjoint(shards):
    spec = small_spec(shards=shards)
    plans = plan_shards(spec)
    assert len(plans) == shards

    # Fuzzing: the iteration budget splits exactly; seeds are distinct.
    assert sum(plan.fuzz_iterations for plan in plans) == spec.fuzz_iterations
    assert max(plan.fuzz_iterations for plan in plans) \
        - min(plan.fuzz_iterations for plan in plans) <= 1
    assert len({plan.fuzz_seed for plan in plans}) == shards

    # Sweep points: every (job, point) pair lands on exactly one shard.
    seen = []
    for plan in plans:
        for job_index, indices in plan.sweep_points:
            assert len(set(indices)) == len(indices)
            seen.extend((job_index, i) for i in indices)
    expected = [(j, i) for j, job in enumerate(spec.sweeps)
                for i in range(len(job.points()))]
    assert sorted(seen) == expected

    # Explorations: whole jobs, each on exactly one shard.
    explored = [j for plan in plans for j in plan.explorations]
    assert sorted(explored) == list(range(len(spec.explorations)))


def test_partition_is_deterministic():
    spec = small_spec()
    assert plan_shards(spec) == plan_shards(spec)


def test_shard_fuzz_seeds_are_offset_from_the_base_seed():
    plans = plan_shards(small_spec(shards=3))
    assert [plan.fuzz_seed for plan in plans] == [11, 12, 13]


def test_default_nightly_spec_is_valid_and_partitions():
    spec = default_nightly_spec(seed=20260807, shards=4)
    assert spec.shards == 4
    plans = plan_shards(spec)
    assert sum(plan.fuzz_iterations for plan in plans) == spec.fuzz_iterations
    assert sum(plan.sweep_point_count for plan in plans) \
        == sum(len(job.points()) for job in spec.sweeps)
    # Round-trips like any user spec.
    assert CampaignSpec.from_dict(spec.to_dict()) == spec


def test_plan_to_dict_is_json_safe():
    for plan in plan_shards(small_spec()):
        json.dumps(plan.to_dict())
