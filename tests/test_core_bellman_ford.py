"""The Bellman-Ford baseline must compute exactly the same slack values."""

import pytest

from repro.core.bellman_ford import compute_sequential_slack_bellman_ford
from repro.core.sequential_slack import compute_sequential_slack
from repro.core.timed_dfg import TimedDFG, build_timed_dfg
from repro.errors import TimingError
from repro.workloads import random_layered_design


def _delays(design, library):
    delays = {}
    for op in design.dfg.operations:
        if op.is_synthesizable:
            delays[op.name] = library.fastest_variant(op).delay
        else:
            delays[op.name] = 0.0
    return delays


@pytest.mark.parametrize("aligned", [False, True])
def test_equivalence_on_resizer(resizer_main, library, aligned):
    timed = build_timed_dfg(resizer_main)
    delays = _delays(resizer_main, library)
    reference = compute_sequential_slack(timed, delays, 1500.0, aligned=aligned)
    baseline = compute_sequential_slack_bellman_ford(timed, delays, 1500.0,
                                                     aligned=aligned)
    for name in reference.slack:
        assert baseline.arrival[name] == pytest.approx(reference.arrival[name])
        assert baseline.required[name] == pytest.approx(reference.required[name])
        assert baseline.slack[name] == pytest.approx(reference.slack[name])


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("aligned", [False, True])
def test_equivalence_on_random_designs(library, seed, aligned):
    design = random_layered_design(seed=seed, layers=4, ops_per_layer=5, latency=4)
    timed = build_timed_dfg(design)
    delays = _delays(design, library)
    reference = compute_sequential_slack(timed, delays, 1500.0, aligned=aligned)
    baseline = compute_sequential_slack_bellman_ford(timed, delays, 1500.0,
                                                     aligned=aligned)
    for name in reference.slack:
        assert baseline.slack[name] == pytest.approx(reference.slack[name])


def test_equivalence_on_interpolation(interpolation, library):
    timed = build_timed_dfg(interpolation)
    delays = _delays(interpolation, library)
    reference = compute_sequential_slack(timed, delays, 1100.0)
    baseline = compute_sequential_slack_bellman_ford(timed, delays, 1100.0)
    assert baseline.worst_slack() == pytest.approx(reference.worst_slack())


def test_invalid_clock_rejected(resizer_main, library):
    timed = build_timed_dfg(resizer_main)
    with pytest.raises(Exception):
        compute_sequential_slack_bellman_ford(timed, {}, -1.0)


def _chain_with_unreached_nodes():
    """A DAG whose name-sorted edge order is anti-topological.

    One relaxation pass over the sorted edges only reaches ``y``; ``x`` and
    ``w`` still sit at -inf when the verification sweep runs, which is the
    regression surface: the sweep used to feed those -inf arrivals into
    ``aligned_start`` (OverflowError) instead of skipping them like the main
    loop does.
    """
    timed = TimedDFG("anti_topological_chain")
    for node in ("z", "y", "x", "w"):
        timed.add_node(node)
    timed.add_edge("z", "y", 0)
    timed.add_edge("y", "x", 0)
    timed.add_edge("x", "w", 0)
    return timed


def test_verification_sweep_guards_unreached_sources_when_aligned():
    """Regression: ``max_passes`` too small + ``aligned=True`` must raise the
    structured non-convergence TimingError, not crash on -inf arrivals."""
    timed = _chain_with_unreached_nodes()
    delays = {"z": 200.0, "y": 200.0, "x": 200.0, "w": 200.0}
    with pytest.raises(TimingError, match="did not converge"):
        compute_sequential_slack_bellman_ford(timed, delays, 1000.0,
                                              aligned=True, max_passes=1)


@pytest.mark.parametrize("aligned", [False, True])
def test_unreachable_cycle_nodes_do_not_trigger_spurious_errors(aligned):
    """Nodes trapped behind a cycle never receive an arrival time; they must
    neither crash the aligned verification sweep nor masquerade as a
    positive cycle.  The reachable part of the graph is still analysed."""
    timed = TimedDFG("cycle_plus_chain")
    for node in ("a", "b", "loop1", "loop2", "trapped"):
        timed.add_node(node)
    timed.add_edge("a", "b", 0)
    timed.add_edge("loop1", "loop2", 0)
    timed.add_edge("loop2", "loop1", 0)
    timed.add_edge("loop2", "trapped", 0)
    delays = {"a": 300.0, "b": 300.0, "loop1": 100.0, "loop2": 100.0,
              "trapped": 100.0}
    result = compute_sequential_slack_bellman_ford(timed, delays, 1000.0,
                                                   aligned=aligned,
                                                   max_passes=1)
    assert result.arrival["b"] == pytest.approx(300.0)
    assert result.arrival["trapped"] == -float("inf")
