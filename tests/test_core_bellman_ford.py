"""The Bellman-Ford baseline must compute exactly the same slack values."""

import pytest

from repro.core.bellman_ford import compute_sequential_slack_bellman_ford
from repro.core.sequential_slack import compute_sequential_slack
from repro.core.timed_dfg import build_timed_dfg
from repro.workloads import random_layered_design


def _delays(design, library):
    delays = {}
    for op in design.dfg.operations:
        if op.is_synthesizable:
            delays[op.name] = library.fastest_variant(op).delay
        else:
            delays[op.name] = 0.0
    return delays


@pytest.mark.parametrize("aligned", [False, True])
def test_equivalence_on_resizer(resizer_main, library, aligned):
    timed = build_timed_dfg(resizer_main)
    delays = _delays(resizer_main, library)
    reference = compute_sequential_slack(timed, delays, 1500.0, aligned=aligned)
    baseline = compute_sequential_slack_bellman_ford(timed, delays, 1500.0,
                                                     aligned=aligned)
    for name in reference.slack:
        assert baseline.arrival[name] == pytest.approx(reference.arrival[name])
        assert baseline.required[name] == pytest.approx(reference.required[name])
        assert baseline.slack[name] == pytest.approx(reference.slack[name])


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("aligned", [False, True])
def test_equivalence_on_random_designs(library, seed, aligned):
    design = random_layered_design(seed=seed, layers=4, ops_per_layer=5, latency=4)
    timed = build_timed_dfg(design)
    delays = _delays(design, library)
    reference = compute_sequential_slack(timed, delays, 1500.0, aligned=aligned)
    baseline = compute_sequential_slack_bellman_ford(timed, delays, 1500.0,
                                                     aligned=aligned)
    for name in reference.slack:
        assert baseline.slack[name] == pytest.approx(reference.slack[name])


def test_equivalence_on_interpolation(interpolation, library):
    timed = build_timed_dfg(interpolation)
    delays = _delays(interpolation, library)
    reference = compute_sequential_slack(timed, delays, 1100.0)
    baseline = compute_sequential_slack_bellman_ford(timed, delays, 1100.0)
    assert baseline.worst_slack() == pytest.approx(reference.worst_slack())


def test_invalid_clock_rejected(resizer_main, library):
    timed = build_timed_dfg(resizer_main)
    with pytest.raises(Exception):
        compute_sequential_slack_bellman_ford(timed, {}, -1.0)
