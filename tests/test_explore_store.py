"""Tests of the persistent JSONL result store."""

import json

import pytest

from repro.errors import ReproError
from repro.explore.store import ResultStore, StoreKey, key_for, open_store
from repro.flows.dse import DesignPoint, run_dse, latency_grid
from repro.workloads import KernelPointFactory

FIR = KernelPointFactory("fir", params=(("taps", 4),))


def make_key(fingerprint="f" * 8, clock=1500.0, ii=None, margin=0.05):
    return StoreKey(fingerprint=fingerprint, clock_period=clock,
                    pipeline_ii=ii, margin_fraction=margin)


def metrics_record(name="P1", latency=8, area=100.0):
    return {
        "point": {"name": name, "latency": latency, "pipeline_ii": None,
                  "clock_period": 1500.0},
        "slack_based": {"area": area, "power": 1.0, "throughput": 0.1,
                        "latency_steps": latency, "meets_timing": True,
                        "fu_instances": 1, "registers": 1},
        "conventional": {"area": area * 1.2, "power": 1.2, "throughput": 0.1,
                         "latency_steps": latency, "meets_timing": True,
                         "fu_instances": 1, "registers": 1},
        "saving_percent": 16.7,
    }


class TestRoundTrip:
    def test_put_get_and_reload(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        key = make_key()
        store.put(key, metrics_record(), workload="fir")
        assert key in store
        assert store.get_metrics(key)["saving_percent"] == 16.7

        reloaded = ResultStore(path)
        assert len(reloaded) == 1
        assert reloaded.get_metrics(key) == store.get_metrics(key)
        assert reloaded.get(key)["workload"] == "fir"
        assert reloaded.get(key)["point"]["name"] == "P1"

    def test_missing_file_loads_empty(self, tmp_path):
        store = ResultStore(str(tmp_path / "absent.jsonl"))
        assert len(store) == 0
        assert store.get(make_key()) is None

    def test_in_memory_store_has_same_semantics(self):
        store = ResultStore(None)
        key = make_key()
        store.put(key, metrics_record())
        assert store.get_metrics(key)["saving_percent"] == 16.7

    def test_last_record_wins_on_duplicate_keys(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        key = make_key()
        store.put(key, metrics_record(area=100.0))
        store.put(key, metrics_record(area=200.0))
        assert store.get_metrics(key)["slack_based"]["area"] == 200.0
        # Both lines are on disk (append-only), the later one wins on load.
        with open(path) as handle:
            assert len(handle.readlines()) == 2
        assert ResultStore(path).get_metrics(key)["slack_based"]["area"] == 200.0

    def test_keys_distinguish_clock_ii_margin_and_fingerprint(self, tmp_path):
        store = ResultStore(str(tmp_path / "store.jsonl"))
        base = make_key()
        store.put(base, metrics_record())
        for other in (make_key(clock=2000.0), make_key(ii=4),
                      make_key(margin=0.1), make_key(fingerprint="g" * 8)):
            assert other not in store


class TestRobustness:
    def test_corrupt_and_foreign_lines_are_skipped(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        key = make_key()
        store.put(key, metrics_record())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{not json\n")
            handle.write("\n")
            handle.write(json.dumps({"schema": 999, "key": {}, "metrics": {}}) + "\n")
            handle.write(json.dumps({"schema": 1, "key": {"fingerprint": "x"},
                                     "metrics": {}}) + "\n")  # incomplete key
            handle.write('"just a string"\n')
        reloaded = ResultStore(path)
        assert len(reloaded) == 1
        assert reloaded.skipped_lines == 4
        assert reloaded.get_metrics(key) is not None

    def test_truncated_trailing_line_is_skipped(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        store.put(make_key(), metrics_record())
        line = json.dumps({"schema": 1,
                           "key": make_key(fingerprint="h" * 8).as_dict(),
                           "metrics": metrics_record()})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line[:len(line) // 2])  # simulated crash mid-write
        reloaded = ResultStore(path)
        assert len(reloaded) == 1
        assert reloaded.skipped_lines == 1

    def test_directory_path_raises(self, tmp_path):
        with pytest.raises(ReproError):
            open_store(str(tmp_path))


class TestDSEResultImportExport:
    def test_round_trip_through_a_real_sweep(self, library, tmp_path):
        points = latency_grid(4, 6, prefix="fir_L")
        result = run_dse(FIR, library, points)
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        count = store.import_dse_result(result, FIR, workload="fir")
        assert count == 3

        exported = ResultStore(path).export_metrics(workload="fir")
        assert sorted(m["point"]["name"] for m in exported) \
            == [p.name for p in points]
        assert exported[0]["slack_based"]["area"] > 0
        # The export is exactly the sweep's own metrics list.
        by_name = {m["point"]["name"]: m for m in exported}
        for entry in result.entries:
            assert by_name[entry.point.name] == entry.metrics()

    def test_precomputed_for_feeds_the_engine_restore(self, library, tmp_path):
        from repro.flows.engine import DSEEngine

        points = latency_grid(4, 6, prefix="fir_L")
        result = run_dse(FIR, library, points)
        store = ResultStore(str(tmp_path / "store.jsonl"))
        store.import_dse_result(result, FIR, workload="fir")

        keyed = [(p.name, key_for(FIR(p), p, 0.05)) for p in points]
        precomputed = store.precomputed_for(keyed)
        assert set(precomputed) == {p.name for p in points}

        engine = DSEEngine(FIR, library, points, executor="serial",
                           precomputed=precomputed)
        engine_result = engine.run()
        assert all(o.status == "restored" for o in engine_result.outcomes)
        assert engine_result.metrics() == [e.metrics() for e in result.entries]

    def test_workload_filtering(self, tmp_path):
        store = ResultStore(str(tmp_path / "store.jsonl"))
        store.put(make_key(fingerprint="a" * 8), metrics_record(), workload="w1")
        store.put(make_key(fingerprint="b" * 8), metrics_record(), workload="w2")
        assert store.workloads() == ["w1", "w2"]
        assert len(store.metrics("w1")) == 1
        assert len(store.metrics()) == 2


class TestCompaction:
    def test_stale_lines_count_superseded_puts(self, tmp_path):
        store = ResultStore(str(tmp_path / "store.jsonl"))
        store.put(make_key(), metrics_record(area=100.0))
        assert store.stale_lines == 0
        for area in (110.0, 120.0, 130.0):
            store.put(make_key(), metrics_record(area=area))
        # Three re-puts of the same key: three superseded disk lines.
        assert len(store) == 1
        assert store.stale_lines == 3

    def test_compact_drops_stale_lines_and_keeps_last_record(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        for area in (100.0, 110.0, 120.0):
            store.put(make_key(), metrics_record(area=area))
        store.put(make_key(fingerprint="b" * 8), metrics_record(area=7.0))
        assert store.compact() == 2
        assert store.stale_lines == 0

        reloaded = ResultStore(path)
        assert len(reloaded) == 2
        assert reloaded.skipped_lines == 0
        assert reloaded.get_metrics(make_key())["slack_based"]["area"] == 120.0

    def test_compact_twice_is_byte_identical(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        store = ResultStore(path)
        for fp in ("a", "b", "c"):
            for area in (1.0, 2.0):
                store.put(make_key(fingerprint=fp * 8),
                          metrics_record(area=area))
        store.compact()
        first = open(path, "rb").read()
        store.compact()
        assert open(path, "rb").read() == first
        # A reloaded store compacts to the same bytes again (the sorted
        # canonical-line discipline is reload-invariant).
        ResultStore(path).compact()
        assert open(path, "rb").read() == first

    def test_in_memory_store_requires_explicit_target(self, tmp_path):
        store = ResultStore()
        store.put(make_key(), metrics_record())
        with pytest.raises(ReproError):
            store.compact()
        target = str(tmp_path / "exported.jsonl")
        assert store.compact(target) == 1
        assert len(ResultStore(target)) == 1

    def test_memo_cache_compacts_at_the_threshold(self, tmp_path):
        from repro.serve.cache import MemoCache

        cache = MemoCache(path=str(tmp_path / "store.jsonl"),
                          compact_after=3)
        key = make_key()
        for area in (1.0, 2.0, 3.0):
            cache.record(key, metrics_record(area=area))
        assert cache.compactions == 0  # 2 stale lines: below the bar
        cache.record(key, metrics_record(area=4.0))
        assert cache.compactions == 1
        assert cache.store.stale_lines == 0
        assert cache.lookup(key)["slack_based"]["area"] == 4.0
