"""Tests for functional-unit binding, register allocation and interconnect."""

import pytest

from repro.bind.binding import bind_operations
from repro.bind.interconnect import estimate_interconnect
from repro.bind.registers import allocate_registers, compute_lifetimes
from repro.core.slack_scheduler import SlackScheduler
from repro.ir.operations import OpKind
from repro.sched.allocation import minimal_allocation, resource_class_key
from repro.sched.list_scheduler import list_schedule


@pytest.fixture(scope="module")
def scheduled(interpolation, library):
    variants = {op.name: (library.fastest_variant(op) if op.is_synthesizable else None)
                for op in interpolation.dfg.operations if op.kind is not OpKind.CONST}
    allocation = minimal_allocation(interpolation, library)
    return list_schedule(interpolation, library, 1100.0, variants, allocation)


def test_every_synthesizable_op_is_bound(interpolation, library, scheduled):
    binding = bind_operations(interpolation, library, scheduled)
    expected = {op.name for op in interpolation.dfg.operations if op.is_synthesizable}
    assert set(binding.op_to_instance) == expected
    assert binding.total_fu_area() > 0
    assert binding.sharing_factor() >= 1.0


def test_no_instance_hosts_two_ops_in_the_same_step(interpolation, library, scheduled):
    binding = bind_operations(interpolation, library, scheduled)
    for instance in binding.instances:
        steps = [scheduled.step_of(op) for op in instance.ops]
        assert len(steps) == len(set(steps))


def test_instance_is_fast_enough_for_all_its_ops(interpolation, library, scheduled):
    binding = bind_operations(interpolation, library, scheduled)
    for instance in binding.instances:
        for op in instance.ops:
            scheduled_variant = scheduled.variant_of(op)
            assert instance.variant.delay <= scheduled_variant.delay + 1e-9


def test_instances_only_host_their_own_class(interpolation, library, scheduled):
    binding = bind_operations(interpolation, library, scheduled)
    for instance in binding.instances:
        for op in instance.ops:
            key = resource_class_key(interpolation.dfg.op(op), library)
            assert key == instance.class_key


def test_grade_aware_binding_separates_speed_grades(interpolation, library):
    """The slack-based schedule mixes grades; binding should not collapse all
    multiplications onto fastest instances."""
    result = SlackScheduler(interpolation, library, 1100.0).run()
    binding = bind_operations(interpolation, library, result.schedule)
    mul_instances = binding.instances_of_class(("mul", 8))
    assert mul_instances
    assert any(instance.variant.grade > 0 for instance in mul_instances)


def test_pipelined_binding_uses_modulo_conflicts(small_idct, library):
    from repro.flows import conventional_flow
    flow = conventional_flow(small_idct, library, clock_period=1500.0, pipeline_ii=4)
    binding = flow.datapath.binding
    for instance in binding.instances:
        slots = [flow.schedule.step_of(op) % 4 for op in instance.ops]
        assert len(slots) == len(set(slots))


def test_lifetimes_and_register_allocation(interpolation, library, scheduled):
    lifetimes = compute_lifetimes(interpolation, scheduled)
    # Values consumed in the same step as produced need no register.
    for lifetime in lifetimes.values():
        assert lifetime.loop_carried or lifetime.death > lifetime.birth
    allocation = allocate_registers(interpolation, scheduled, lifetimes)
    assert allocation.num_registers() >= 1
    assert allocation.total_bits() >= max((l.width for l in lifetimes.values()),
                                          default=0)
    # No register holds two values with overlapping lifetimes.
    for register in allocation.registers:
        intervals = []
        for value in register.values:
            lifetime = lifetimes[value]
            if lifetime.loop_carried:
                start, end = 0, scheduled.latency_steps() - 1
            else:
                start, end = lifetime.birth, lifetime.death
            intervals.append((start, end))
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 < s2


def test_loop_carried_values_are_registered(interpolation, library, scheduled):
    lifetimes = compute_lifetimes(interpolation, scheduled)
    carried_sources = {e.src for e in interpolation.dfg.backward_edges}
    for name in carried_sources:
        assert name in lifetimes
        assert lifetimes[name].loop_carried


def test_interconnect_counts_shared_ports(interpolation, library, scheduled):
    binding = bind_operations(interpolation, library, scheduled)
    registers = allocate_registers(interpolation, scheduled)
    estimate = estimate_interconnect(interpolation, library, scheduled, binding,
                                     registers)
    shared = [i for i in binding.instances if len(i.ops) > 1]
    if shared:
        assert estimate.num_muxes() > 0
        assert estimate.total_area > 0
    for instance in binding.instances:
        assert estimate.delay_before(instance.name) >= 0.0
