"""Incremental state timing: patched reports must equal full recomputes.

The contract under test (see ``repro.rtl.incremental_timing``): after any
sequence of FU-instance variant changes, a report maintained by patching only
the touched states is *bit-for-bit equal* to a fresh
``analyze_state_timing`` run — and the incremental ``recover_area`` built on
top of it is observably equivalent to the original one-accept-per-round
full-recompute pass (kept as ``recover_area_reference``).
"""

import json
import random

import pytest

import repro.flows.pipeline as pipeline_mod
from repro.bind.binding import FUInstance
from repro.errors import BindingError
from repro.flows import DesignPoint, conventional_flow, evaluate_point
from repro.ir.operations import OpKind
from repro.rtl.area_recovery import recover_area, recover_area_reference
from repro.rtl.incremental_timing import IncrementalStateTiming
from repro.rtl.timing import analyze_state_timing
from repro.workloads import fir_design, idct_design
from repro.workloads.factories import IDCTPointFactory


def _fresh_datapath(design, library, clock_period):
    """A bound datapath before any area recovery ran on it."""
    flow = conventional_flow(design, library, clock_period=clock_period,
                             area_recovery=False)
    return flow.datapath


def _resource_class(datapath, instance):
    kind_value, width = instance.class_key
    return datapath.library.class_for(OpKind(kind_value), width)


def _assert_reports_identical(actual, expected):
    """Exact (bit-for-bit) equality of every report field."""
    assert actual.clock_period == expected.clock_period
    assert actual.state_critical_path == expected.state_critical_path
    assert actual.op_start == expected.op_start
    assert actual.op_finish == expected.op_finish
    assert actual.op_slack == expected.op_slack


# -- report patching ---------------------------------------------------------------


def test_initial_report_matches_full_analysis(small_idct, library):
    datapath = _fresh_datapath(small_idct, library, 1500.0)
    analyzer = IncrementalStateTiming(datapath)
    _assert_reports_identical(analyzer.report, analyze_state_timing(datapath))


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_patched_report_equals_full_recompute_exactly(small_idct, library, seed):
    """Random walks over the variant space, patching one instance at a time."""
    datapath = _fresh_datapath(small_idct, library, 1500.0)
    analyzer = IncrementalStateTiming(datapath)
    rng = random.Random(seed)
    instances = [i for i in datapath.binding.instances if i.ops]
    for _ in range(25):
        instance = rng.choice(instances)
        grades = _resource_class(datapath, instance).variants
        instance.variant = rng.choice(list(grades))
        analyzer.patch_instance(instance.name)
        _assert_reports_identical(analyzer.report, analyze_state_timing(datapath))


def test_snapshot_restore_reverts_a_trial_exactly(small_fir, library):
    datapath = _fresh_datapath(small_fir, library, 1500.0)
    analyzer = IncrementalStateTiming(datapath)
    before = analyze_state_timing(datapath)
    instance = next(i for i in datapath.binding.instances if i.ops)
    edges = analyzer.instance_edges(instance.name)
    saved = analyzer.snapshot(edges)
    original = instance.variant
    slower = _resource_class(datapath, instance).next_slower(original)
    if slower is None:
        pytest.skip("no slower grade available for the chosen instance")
    instance.variant = slower
    analyzer.recompute_edges(edges)
    instance.variant = original
    analyzer.restore(saved)
    _assert_reports_identical(analyzer.report, before)


def test_unknown_edges_are_rejected_consistently(small_fir, library):
    """snapshot() and recompute_edges() must agree on bad input: a silently
    empty snapshot would let restore() corrupt the cached report."""
    from repro.errors import TimingError

    datapath = _fresh_datapath(small_fir, library, 1500.0)
    analyzer = IncrementalStateTiming(datapath)
    with pytest.raises(TimingError):
        analyzer.recompute_edges(["no_such_edge"])
    with pytest.raises(TimingError):
        analyzer.snapshot(["no_such_edge"])


def test_instance_edges_index_matches_schedule(small_idct, library):
    datapath = _fresh_datapath(small_idct, library, 1500.0)
    for instance in datapath.binding.instances:
        expected = {datapath.schedule.edge_of(op) for op in instance.ops}
        assert datapath.instance_edges(instance.name) == expected
    with pytest.raises(BindingError):
        datapath.instance_edges("no_such_instance")


def test_register_margin_is_honoured(small_fir, library):
    datapath = _fresh_datapath(small_fir, library, 1500.0)
    analyzer = IncrementalStateTiming(datapath, register_margin=100.0)
    _assert_reports_identical(analyzer.report,
                              analyze_state_timing(datapath,
                                                   register_margin=100.0))


# -- recover_area equivalence -------------------------------------------------------


@pytest.mark.parametrize("build", [
    lambda: idct_design(latency=12, rows=1, clock_period=1500.0),
    lambda: idct_design(latency=8, rows=1, clock_period=1500.0),
    lambda: fir_design(taps=8, latency=6, clock_period=1500.0),
])
def test_incremental_recovery_equals_reference(build, library):
    reference_dp = _fresh_datapath(build(), library, 1500.0)
    incremental_dp = _fresh_datapath(build(), library, 1500.0)

    reference = recover_area_reference(reference_dp)
    incremental = recover_area(incremental_dp)

    assert incremental.downgrades == reference.downgrades
    assert incremental.area_before == reference.area_before
    assert incremental.area_after == reference.area_after
    # Acceptances may interleave differently across independent instance
    # groups, but the set of downgraded instances and every final grade must
    # agree.
    assert set(incremental.changed_instances) == set(reference.changed_instances)
    ref_variants = {i.name: i.variant.name
                    for i in reference_dp.binding.instances}
    inc_variants = {i.name: i.variant.name
                    for i in incremental_dp.binding.instances}
    assert inc_variants == ref_variants
    _assert_reports_identical(analyze_state_timing(incremental_dp),
                              analyze_state_timing(reference_dp))


def test_recovery_skips_datapaths_that_fail_timing(small_fir, library):
    datapath = _fresh_datapath(small_fir, library, 1500.0)
    # Force a timing failure by overclocking the datapath far beyond reach.
    datapath.clock_period = 1.0
    datapath.schedule.clock_period = 1.0
    result = recover_area(datapath)
    assert result.downgrades == 0
    assert result.area_saved == 0.0


def test_op_less_instances_are_never_downgraded(small_fir, library):
    """An instance bound to no operations carries no timing evidence; the old
    ``min(..., default=0.0)`` let a zero-delay-increase downgrade of such an
    instance through.  It must now be skipped outright."""
    datapath = _fresh_datapath(small_fir, library, 1500.0)
    template = next(i for i in datapath.binding.instances if i.ops)
    resource_class = _resource_class(datapath, template)
    fastest = resource_class.variants[0]
    ghost = FUInstance(name="ghost_u0", class_key=template.class_key,
                       variant=fastest, ops=[], steps=set())
    datapath.binding.instances.append(ghost)
    datapath._instance_edges = None  # rebuilt with the hand-added instance
    result = recover_area(datapath)
    assert ghost.variant is fastest
    assert "ghost_u0" not in result.changed_instances


# -- flow-level byte-identical guard ------------------------------------------------


def test_flow_metrics_byte_identical_to_reference_recovery(library, monkeypatch):
    """Both flows, run end to end, must produce byte-identical
    ``DSEEntry.metrics()`` whether area recovery runs incrementally or via
    the full-recompute reference (ISSUE 2 acceptance criterion)."""
    factory = IDCTPointFactory(rows=1)
    points = [DesignPoint(name="N12", latency=12, clock_period=1500.0),
              DesignPoint(name="P8", latency=8, pipeline_ii=4,
                          clock_period=1500.0)]
    incremental = [evaluate_point(factory, library, p).metrics()
                   for p in points]
    monkeypatch.setattr(pipeline_mod, "recover_area", recover_area_reference)
    reference = [evaluate_point(factory, library, p).metrics() for p in points]
    assert (json.dumps(incremental, sort_keys=True)
            == json.dumps(reference, sort_keys=True))
