"""Tests of the HTTP front end — all through :func:`route_request`.

No sockets: the whole protocol is the pure ``(service, method, path,
body) -> (status, payload)`` function, so the tests drive it directly
against a fake-backed service.  The socket shell is covered by a single
bind-and-close sanity check.
"""

import json

from repro.serve.fakes import FakeEvaluator, sweep_payload
from repro.serve.http import make_server, route_request
from repro.serve.service import DSEService


def _service(**kwargs):
    kwargs.setdefault("evaluator", FakeEvaluator())
    kwargs.setdefault("library", object())
    return DSEService(**kwargs)


def _spec_body(latencies=(6, 8)):
    return {"kind": "sweep", "payload": sweep_payload(latencies=latencies)}


class TestRoutes:
    def test_submit_status_result_round_trip(self):
        service = _service()
        status, receipt = route_request(service, "POST", "/submit",
                                        _spec_body())
        assert status == 200 and receipt["state"] == "pending"
        job_id = receipt["job_id"]
        service.run_pending()

        status, payload = route_request(service, "GET", f"/status/{job_id}")
        assert status == 200 and payload["state"] == "done"

        status, payload = route_request(service, "GET", f"/result/{job_id}")
        assert status == 200
        assert payload["result"]["evaluations"] == 2
        json.dumps(payload)  # every response body is JSON-safe

    def test_cancel_pending_job(self):
        service = _service()
        _, receipt = route_request(service, "POST", "/submit", _spec_body())
        status, payload = route_request(service, "POST",
                                        f"/cancel/{receipt['job_id']}")
        assert status == 200 and payload["state"] == "cancelled"

    def test_stats_and_healthz(self):
        service = _service()
        status, payload = route_request(service, "GET", "/stats")
        assert status == 200 and "jobs" in payload and "cache" in payload
        status, payload = route_request(service, "GET", "/healthz")
        assert status == 200 and payload == {"ok": True}

    def test_trailing_slash_and_case_are_tolerated(self):
        service = _service()
        assert route_request(service, "get", "/healthz/")[0] == 200


class TestErrorMapping:
    def test_unknown_job_is_404(self):
        service = _service()
        for method, path in [("GET", "/status/job-999999"),
                             ("GET", "/result/job-999999"),
                             ("POST", "/cancel/job-999999")]:
            status, payload = route_request(service, method, path)
            assert status == 404 and "error" in payload

    def test_wrong_state_is_409(self):
        service = _service()
        _, receipt = route_request(service, "POST", "/submit", _spec_body())
        status, _ = route_request(service, "GET",
                                  f"/result/{receipt['job_id']}")
        assert status == 409  # result of a pending job

        service.run_pending()
        status, _ = route_request(service, "POST",
                                  f"/cancel/{receipt['job_id']}")
        assert status == 409  # cancel of a done job

    def test_malformed_spec_is_400(self):
        service = _service()
        status, payload = route_request(
            service, "POST", "/submit",
            {"kind": "sweep", "payload": {"workload": "no-such-kernel",
                                          "latencies": [6]}})
        assert status == 400 and "error" in payload

    def test_missing_body_is_400(self):
        status, _ = route_request(_service(), "POST", "/submit", None)
        assert status == 400

    def test_unknown_route_is_404(self):
        service = _service()
        assert route_request(service, "GET", "/nope")[0] == 404
        assert route_request(service, "DELETE", "/submit")[0] == 404
        assert route_request(service, "GET", "/status")[0] == 404


class TestServerShell:
    def test_make_server_binds_a_free_port_and_owns_the_service(self):
        service = _service()
        server = make_server(service, port=0)
        try:
            host, port = server.server_address[:2]
            assert host == "127.0.0.1" and port > 0
            assert server.service is service
        finally:
            server.server_close()
