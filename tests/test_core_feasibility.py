"""Tests for the Proposition-1 feasibility checks."""

import pytest

from repro.core.budgeting import budget_slack
from repro.core.feasibility import check_feasibility, schedule_from_arrival_times
from repro.core.opspan import OperationSpans


def test_feasible_with_fastest_resources(interpolation, library):
    report = check_feasibility(interpolation, library, clock_period=1100.0)
    assert report.feasible
    assert report.violations == []
    assert report.worst_slack() >= 0


def test_infeasible_with_too_short_clock(interpolation, library):
    report = check_feasibility(interpolation, library, clock_period=400.0)
    assert not report.feasible
    assert report.violations
    assert report.worst_slack() < 0


def test_explicit_delays_override_library(interpolation, library):
    delays = {op.name: 10.0 for op in interpolation.dfg.operations}
    report = check_feasibility(interpolation, library, clock_period=1100.0,
                               delays=delays)
    assert report.feasible


def test_budgeted_variants_remain_feasible(interpolation, library):
    budget = budget_slack(interpolation, library, clock_period=1100.0)
    report = check_feasibility(interpolation, library, clock_period=1100.0,
                               variants=budget.variants)
    assert report.feasible


def test_constructive_schedule_is_consistent(interpolation, library):
    """Proposition 1: positive aligned slack yields a feasible schedule."""
    budget = budget_slack(interpolation, library, clock_period=1100.0)
    assert budget.feasible
    spans = OperationSpans(interpolation)
    schedule = schedule_from_arrival_times(
        interpolation, library, 1100.0, budget.timing,
        variants=budget.variants, spans=spans,
    )
    assert schedule.is_complete()
    # Data dependencies never go backwards in control steps.
    problems = [p for p in schedule.validate() if "scheduled before" in p]
    assert problems == []
    # Every operation sits inside its span.
    for item in schedule.items:
        assert item.edge in spans.span(item.op).edges
