"""run_shard end-to-end on a tiny campaign: artifacts, manifest, determinism."""

import json
import os

import pytest

from repro.campaign.merge import CORPUS_FILE, METRICS_FILE, STORE_FILE
from repro.campaign.shard import run_shard
from repro.campaign.spec import CampaignSpec, ExploreJob, SweepJob
from repro.errors import ReproError
from repro.explore.store import ResultStore
from repro.verify.corpus import Corpus

TINY = CampaignSpec(
    name="tiny",
    seed=5,
    shards=2,
    fuzz_iterations=4,
    fuzz_max_segments=3,
    sweeps=(SweepJob(workload="idct", latencies=(6, 7, 8),
                     params=(("rows", 1),)),),
)


@pytest.fixture(scope="module")
def shard0(tmp_path_factory, library):
    out = str(tmp_path_factory.mktemp("campaign") / "s0")
    manifest = run_shard(TINY, 0, out, library=library)
    return out, manifest


def test_shard_writes_all_three_artifacts(shard0):
    out, _ = shard0
    for name in (CORPUS_FILE, STORE_FILE, METRICS_FILE):
        assert os.path.exists(os.path.join(out, name)), name


def test_shard_manifest_shape(shard0):
    out, manifest = shard0
    assert manifest["schema"] == 1
    assert manifest["campaign"] == "tiny"
    assert manifest["seed"] == 5
    assert manifest["plan"]["index"] == 0
    assert manifest["fuzz"]["seed"] == 5
    assert manifest["fuzz"]["iterations"] == 2
    assert manifest["fuzz"]["scenario_digest"]
    assert manifest["sweeps"][0]["workload"] == "idct"
    assert manifest["skipped_lines"] == {"corpus": 0, "store": 0}
    assert "counters" in manifest["metrics"]
    assert "jsonl_stores" in manifest["cache"]
    # The written manifest is the returned one.
    with open(os.path.join(out, METRICS_FILE), "r", encoding="utf-8") as handle:
        assert json.load(handle) == json.loads(json.dumps(manifest))


def test_shard_store_holds_its_slice_of_the_grid(shard0):
    out, manifest = shard0
    store = ResultStore(os.path.join(out, STORE_FILE))
    assert len(store) == manifest["store_records"]
    # Shard 0 of 2 owns the even points of the 3-point grid (round-robin).
    assert len(store) == 2
    names = sorted(record["point"]["name"] for record in store.records())
    assert names == ["idct_L6_T1500", "idct_L8_T1500"]
    for record in store.records():
        assert record["workload"] == "idct"
        assert "area" in record["metrics"]["slack_based"]


def test_shard_corpus_loads_and_matches_manifest(shard0):
    out, manifest = shard0
    corpus = Corpus(os.path.join(out, CORPUS_FILE))
    assert len(corpus) == manifest["corpus_records"]
    assert manifest["fuzz"]["failures"] == len(corpus)


def test_shard_runs_are_byte_identical(shard0, tmp_path, library):
    out, _ = shard0
    again = str(tmp_path / "again")
    run_shard(TINY, 0, again, library=library)
    for name in (CORPUS_FILE, STORE_FILE):
        with open(os.path.join(out, name), "rb") as first, \
                open(os.path.join(again, name), "rb") as second:
            assert first.read() == second.read(), name


def test_shard_index_out_of_range(tmp_path, library):
    with pytest.raises(ReproError):
        run_shard(TINY, 2, str(tmp_path / "nope"), library=library)
    with pytest.raises(ReproError):
        run_shard(TINY, -1, str(tmp_path / "nope"), library=library)


def test_exploration_shard_populates_the_store(tmp_path, library):
    spec = CampaignSpec(
        name="explore-only",
        seed=1,
        explorations=(ExploreJob(workload="idct", latencies=(6, 7, 8),
                                 coarse_points=2, params=(("rows", 1),)),),
    )
    out = str(tmp_path / "explore")
    manifest = run_shard(spec, 0, out, library=library)
    assert manifest["explorations"][0]["front_size"] >= 1
    store = ResultStore(os.path.join(out, STORE_FILE))
    assert len(store) >= 2
    assert store.workloads() == ["idct"]


def test_progress_callback_narrates_the_stages(tmp_path, library):
    messages = []
    run_shard(TINY, 1, str(tmp_path / "s1"), library=library,
              progress=messages.append)
    assert any("fuzz" in message for message in messages)
    assert any("sweep" in message for message in messages)
