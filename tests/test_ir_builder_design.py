"""Unit tests for the builder API, Design container and validation."""

import pytest

from repro.errors import IRError
from repro.ir import DesignBuilder, LinearDesignBuilder, NodeKind, OpKind
from repro.ir.validate import validate_cfg, validate_design, validate_dfg


def test_linear_builder_skeleton():
    builder = LinearDesignBuilder("lin", 3)
    assert builder.edge_names == ["e1", "e2", "e3"]
    assert builder.edge_for_step(2) == "e2"
    design = builder.build()
    assert design.num_states == 3
    assert {e.name for e in design.cfg.backward_edges} == {"loop_back"}


def test_linear_builder_rejects_bad_steps():
    builder = LinearDesignBuilder("lin", 2)
    with pytest.raises(IRError):
        builder.edge_for_step(0)
    with pytest.raises(IRError):
        builder.edge_for_step(3)


def test_builder_op_requires_existing_birth_edge():
    builder = LinearDesignBuilder("lin", 1)
    with pytest.raises(IRError):
        builder.op(OpKind.ADD, "nope")


def test_builder_wires_inputs_in_port_order():
    builder = LinearDesignBuilder("lin", 1)
    a = builder.read("a", "e1", width=8)
    b = builder.read("b", "e1", width=8)
    add = builder.binary(OpKind.ADD, a.name, b.name, "e1", width=8)
    edges = builder.dfg.in_edges(add.name)
    assert sorted((e.src, e.dst_port) for e in edges) == [(a.name, 0), (b.name, 1)]


def test_builder_unique_names():
    builder = DesignBuilder("x")
    names = {builder.unique("op") for _ in range(10)}
    assert len(names) == 10


def test_design_summary_and_birth_map(interpolation):
    summary = interpolation.summary()
    assert summary["operations"] == interpolation.dfg.num_operations
    assert summary["states"] == 3
    birth = interpolation.birth_map()
    assert birth["write_x"] == "e3"
    assert all(interpolation.cfg.has_edge(edge) for edge in birth.values())


def test_operations_on_edge(interpolation):
    ops = interpolation.operations_on_edge("e3")
    assert any(op.name == "write_x" for op in ops)
    with pytest.raises(IRError):
        interpolation.operations_on_edge("nope")


def test_design_copy_is_independent(interpolation):
    clone = interpolation.copy(name="clone")
    clone.dfg.remove_operation("write_x")
    assert interpolation.dfg.has_op("write_x")
    assert clone.name == "clone"


def test_validate_design_passes_on_workloads(interpolation, resizer_full, small_fir):
    for design in (interpolation, resizer_full, small_fir):
        validate_design(design)  # must not raise


def test_validate_rejects_birth_on_backward_edge():
    builder = LinearDesignBuilder("bad", 2)
    design = builder.build()
    design.dfg.add_op("x", OpKind.ADD, birth_edge="loop_back")
    with pytest.raises(IRError):
        validate_design(design)


def test_validate_rejects_unknown_birth_edge():
    builder = LinearDesignBuilder("bad", 1)
    design = builder.build()
    design.dfg.add_op("x", OpKind.ADD, birth_edge="does_not_exist")
    with pytest.raises(IRError):
        validate_design(design)


def test_validate_rejects_const_without_value():
    builder = LinearDesignBuilder("bad", 1)
    builder.dfg.add_op("c", OpKind.CONST, birth_edge="e1")
    with pytest.raises(IRError):
        validate_dfg(builder.dfg)


def test_validate_rejects_bad_clock_and_ii(interpolation):
    clone = interpolation.copy()
    clone.clock_period = -1.0
    with pytest.raises(IRError):
        validate_design(clone)
    clone = interpolation.copy()
    clone.pipeline_ii = 0
    with pytest.raises(IRError):
        validate_design(clone)


def test_validate_cfg_reports_unreachable_nodes():
    builder = DesignBuilder("frag")
    builder.cfg.add_node("start", NodeKind.START)
    builder.cfg.add_node("island", NodeKind.STATE)
    builder.cfg.add_node("after", NodeKind.PLAIN)
    builder.cfg.add_edge("e1", "island", "after")
    with pytest.raises(IRError):
        validate_cfg(builder.cfg)
