"""The power model (repro.rtl.power) on the paper kernels.

Covers the model's defining relationships — total decomposition, activity
scaling of the dynamic component only, leakage tracking area, the
pipelined-iteration rule (energy per initiation interval, not per latency)
— on the paper kernels and on a generated ``segmented_design`` scenario.
"""

import pytest

from repro.flows import conventional_flow
from repro.lib.tsmc90 import tsmc90_library
from repro.rtl.area import area_report
from repro.rtl.power import power_report
from repro.workloads import (
    fft_stage_design,
    fir_design,
    idct_design,
    interpolation_design,
    segmented_design,
)

CLOCK = 1500.0


@pytest.fixture(scope="module")
def library():
    return tsmc90_library()


def _datapath(design, library, clock=CLOCK, **kwargs):
    return conventional_flow(design, library, clock_period=clock,
                             **kwargs).datapath


@pytest.mark.parametrize("case", ["interpolation", "fir", "fft", "idct"])
def test_power_components_on_paper_kernels(case, library):
    design = {
        "interpolation": lambda: interpolation_design(unroll=2),
        "fir": lambda: fir_design(taps=6, latency=5, clock_period=CLOCK),
        "fft": lambda: fft_stage_design(points=4, latency=5,
                                        clock_period=CLOCK),
        "idct": lambda: idct_design(latency=12, rows=1, clock_period=CLOCK),
    }[case]()
    clock = design.clock_period or CLOCK
    datapath = _datapath(design, library, clock=clock)
    report = power_report(datapath)
    assert report.dynamic > 0 and report.leakage > 0
    assert report.total == pytest.approx(report.dynamic + report.leakage)
    assert report.iteration_time == pytest.approx(
        datapath.num_states * clock)
    assert report.throughput == pytest.approx(1000.0 / report.iteration_time)
    assert "total=" in report.describe()


def test_power_on_segmented_design_scenario(library):
    design = segmented_design(
        segments=[
            ("linear", (("add", 0, 1), ("mul", 1, 2))),
            ("diamond", (("sub", 0, 1),), (("add", 1, 2),),
             (("mul", 0, 3),), (("add", 2, 4),)),
        ],
        inputs=(16, 16),
        outputs=1,
        tail_states=2,
        clock_period=2000.0,
    )
    report = power_report(_datapath(design, library, clock=2000.0))
    assert report.dynamic > 0 and report.leakage > 0
    assert report.total == pytest.approx(report.dynamic + report.leakage)


def test_activity_scales_dynamic_power_only(library):
    datapath = _datapath(fir_design(taps=4, latency=4, clock_period=CLOCK),
                         library)
    full = power_report(datapath, activity=1.0)
    quarter = power_report(datapath, activity=0.25)
    assert quarter.dynamic == pytest.approx(full.dynamic * 0.25)
    assert quarter.leakage == pytest.approx(full.leakage)
    assert quarter.iteration_time == full.iteration_time


def test_leakage_tracks_area(library):
    small = _datapath(idct_design(latency=12, rows=1, clock_period=CLOCK),
                      library)
    large = _datapath(idct_design(latency=12, rows=2, clock_period=CLOCK),
                      library)
    assert area_report(large).total > area_report(small).total
    assert power_report(large).leakage > power_report(small).leakage
    # Leakage is proportional to instantiated area with one shared factor.
    small_power, large_power = power_report(small), power_report(large)
    assert small_power.leakage / area_report(small).total == pytest.approx(
        large_power.leakage / area_report(large).total)


def test_pipelining_spends_energy_per_initiation_interval(library):
    latency = 16
    plain = idct_design(latency=latency, rows=1, clock_period=CLOCK)
    pipelined = idct_design(latency=latency, rows=1, clock_period=CLOCK,
                            pipeline_ii=4)
    plain_report = power_report(_datapath(plain, library))
    pipe_dp = _datapath(pipelined, library, pipeline_ii=4)
    pipe_report = power_report(pipe_dp)
    # A new iteration starts every II states: iteration time shrinks and
    # throughput rises accordingly.
    assert pipe_report.iteration_time == pytest.approx(4 * CLOCK)
    assert pipe_report.iteration_time < plain_report.iteration_time
    assert pipe_report.throughput > plain_report.throughput
    # Same energy spent over a shorter interval: dynamic power goes up.
    assert pipe_report.dynamic > plain_report.dynamic


def test_iteration_interval_never_exceeds_latency(library):
    # An II larger than the actual state count collapses to the state count.
    design = fir_design(taps=3, latency=3, clock_period=CLOCK)
    design.pipeline_ii = 99
    datapath = _datapath(design, library)
    report = power_report(datapath)
    assert report.iteration_time == pytest.approx(
        datapath.num_states * CLOCK)
