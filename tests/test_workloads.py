"""Tests for the workload generators."""

import pytest

from repro.ir.operations import OpKind
from repro.ir.validate import validate_design
from repro.workloads import (
    dct_butterfly_design,
    fft_stage_design,
    fir_design,
    idct_design,
    interpolation_design,
    matmul_design,
    random_layered_design,
    resizer_design,
    resizer_main_design,
    sobel_design,
)


def test_interpolation_matches_paper_op_counts(interpolation):
    counts = interpolation.dfg.count_by_kind()
    assert counts[OpKind.MUL] == 7
    assert counts[OpKind.ADD] == 4
    assert counts[OpKind.WRITE] == 1
    assert interpolation.num_states == 3
    assert interpolation.clock_period == 1100.0


def test_interpolation_unroll_scales_op_counts():
    design = interpolation_design(unroll=6, num_states=4)
    counts = design.dfg.count_by_kind()
    assert counts[OpKind.MUL] == 11   # 6 x-updates + 5 deltaX updates
    assert counts[OpKind.ADD] == 6
    assert design.num_states == 4


def test_interpolation_rejects_bad_parameters():
    with pytest.raises(ValueError):
        interpolation_design(unroll=0)
    with pytest.raises(ValueError):
        interpolation_design(num_states=0)


def test_resizer_main_matches_fig5():
    design = resizer_main_design()
    names = {op.name for op in design.dfg.operations if op.kind is not OpKind.CONST}
    assert names == {"rd_a", "add", "div", "sub", "rd_b", "mul", "mux", "wr"}
    assert design.cfg.has_edge("e8")
    assert design.cfg.edge("e8").backward


def test_resizer_full_adds_condition_and_index():
    design = resizer_design()
    assert design.dfg.has_op("cmp")
    assert design.dfg.op("cmp").attrs.get("branch_condition")
    assert design.dfg.has_op("i_add")
    assert any(e.backward for e in design.dfg.edges)


def test_idct_op_counts_scale_with_rows():
    one = idct_design(latency=8, rows=1)
    two = idct_design(latency=8, rows=2)
    count_one = one.dfg.count_by_kind()
    count_two = two.dfg.count_by_kind()
    assert count_one[OpKind.MUL] == 14
    assert count_two[OpKind.MUL] == 28
    assert count_one[OpKind.READ] == 8
    assert count_one[OpKind.WRITE] == 8


def test_idct_two_dimensional_doubles_the_passes():
    flat = idct_design(latency=16, rows=8)
    full = idct_design(latency=16, rows=8, two_dimensional=True)
    assert full.dfg.count_by_kind()[OpKind.MUL] == \
        2 * flat.dfg.count_by_kind()[OpKind.MUL]


def test_idct_rejects_bad_parameters():
    with pytest.raises(ValueError):
        idct_design(latency=1)
    with pytest.raises(ValueError):
        idct_design(rows=0)


def test_all_kernels_validate(library):
    designs = [
        fir_design(taps=4, latency=3),
        matmul_design(size=2, latency=4),
        dct_butterfly_design(latency=3),
        fft_stage_design(points=4, latency=3),
        sobel_design(latency=3),
        idct_design(latency=8, rows=1),
        interpolation_design(),
        resizer_design(),
        resizer_main_design(),
        random_layered_design(seed=7),
    ]
    for design in designs:
        warnings = validate_design(design)
        assert isinstance(warnings, list)
        assert design.dfg.num_operations > 0


def test_random_generator_is_deterministic():
    a = random_layered_design(seed=3, layers=3, ops_per_layer=4)
    b = random_layered_design(seed=3, layers=3, ops_per_layer=4)
    assert [op.name for op in a.dfg.operations] == [op.name for op in b.dfg.operations]
    assert [op.kind for op in a.dfg.operations] == [op.kind for op in b.dfg.operations]
    c = random_layered_design(seed=4, layers=3, ops_per_layer=4)
    assert [op.kind for op in a.dfg.operations] != [op.kind for op in c.dfg.operations]


def test_kernel_parameter_validation():
    with pytest.raises(ValueError):
        fir_design(taps=0)
    with pytest.raises(ValueError):
        matmul_design(size=0)
    with pytest.raises(ValueError):
        fft_stage_design(points=3)
    with pytest.raises(ValueError):
        random_layered_design(layers=0)


# -- seeded generator: seed resolution and mixed widths -----------------------------


def test_random_generator_resolves_seed_none_reproducibly():
    """seed=None must resolve to a concrete seed that replays the design.

    The old behaviour seeded random.Random(None) from OS entropy and threw
    the seed away, so a failing draw could never be reproduced.
    """
    from repro.core.analysis_cache import design_fingerprint
    from repro.workloads import random_layered_design_seeded

    design, resolved = random_layered_design_seeded(seed=None, layers=2,
                                                    ops_per_layer=3)
    assert isinstance(resolved, int)
    assert design.attrs["seed"] == resolved
    replay, resolved_again = random_layered_design_seeded(seed=resolved,
                                                          layers=2,
                                                          ops_per_layer=3)
    assert resolved_again == resolved
    assert design_fingerprint(replay) == design_fingerprint(design)


def test_random_generator_stamps_resolved_seed_in_plain_form():
    design = random_layered_design(seed=None, layers=1, ops_per_layer=2)
    assert isinstance(design.attrs["seed"], int)


def test_resolve_seed_passthrough_and_draw():
    from repro.workloads import resolve_seed

    assert resolve_seed(17) == 17
    drawn = resolve_seed(None)
    assert 0 <= drawn < 2 ** 32


def test_random_generator_width_choices_mix_bitwidths():
    design = random_layered_design(seed=5, layers=2, ops_per_layer=4,
                                   width_choices=(8, 24))
    widths = {op.width for op in design.dfg.operations
              if op.kind is OpKind.READ}
    assert widths <= {8, 24} and len(widths) == 2
    for op in design.dfg.operations:
        if op.operand_widths:
            assert op.width == max(op.operand_widths)
    assert validate_design(design) == []


# -- segmented designs --------------------------------------------------------------


SEGMENTS = (
    ("linear", (("add", 0, 1), ("mul", 2, 0))),
    ("diamond", (("sub", 1, 2),), (("mul", 0, 3),), (("add", 2, 2),),
     (("shl", 4, 1),)),
)


def test_segmented_design_builds_branchy_multi_bb_cfg():
    from repro.workloads import segmented_design
    from repro.ir.cfg import NodeKind

    design = segmented_design(SEGMENTS, inputs=(8, 16), outputs=2,
                              tail_states=1, clock_period=1500.0)
    assert validate_design(design) == []
    kinds = {node.kind for node in design.cfg.nodes}
    assert NodeKind.BRANCH in kinds and NodeKind.MERGE in kinds
    # 1 linear + 3 diamond states + 1 tail wait state.
    assert len(design.cfg.state_nodes) == 5
    counts = design.dfg.count_by_kind()
    assert counts[OpKind.MUX] == 1       # one mux per diamond
    assert counts[OpKind.GT] >= 1        # the automatic branch condition
    assert counts[OpKind.READ] == 2 and counts[OpKind.WRITE] == 2
    assert any(e.backward for e in design.cfg.edges)  # process loop


def test_segmented_design_is_a_pure_function_of_the_spec():
    from repro.core.analysis_cache import design_fingerprint
    from repro.workloads import segmented_design

    a = segmented_design(SEGMENTS, inputs=(8, 16))
    b = segmented_design(SEGMENTS, inputs=(8, 16))
    assert design_fingerprint(a) == design_fingerprint(b)
    wider = segmented_design(SEGMENTS, inputs=(8, 32))
    assert design_fingerprint(wider) != design_fingerprint(a)


def test_segmented_design_indices_wrap_modulo_visible_values():
    """Out-of-range operand indices must still build (shrink relies on it)."""
    from repro.workloads import segmented_design

    design = segmented_design(
        (("linear", (("add", 10 ** 6, 12345),)),), inputs=(8,))
    assert validate_design(design) == []


def test_segmented_design_empty_diamond_arms_fall_back_to_main_values():
    from repro.workloads import segmented_design

    design = segmented_design(
        (("diamond", (), (), (), ()),), inputs=(16,))
    assert validate_design(design) == []
    counts = design.dfg.count_by_kind()
    assert counts[OpKind.MUX] == 1


def test_segmented_design_parameter_validation():
    from repro.errors import IRError
    from repro.workloads import segmented_design

    with pytest.raises(IRError):
        segmented_design((), inputs=(8,))
    with pytest.raises(IRError):
        segmented_design(SEGMENTS, inputs=())
    with pytest.raises(IRError):
        segmented_design(SEGMENTS, inputs=(8,), outputs=0)
    with pytest.raises(IRError):
        segmented_design((("spiral", ()),), inputs=(8,))
    with pytest.raises(IRError):
        segmented_design((("linear", (("frobnicate", 0, 0),)),), inputs=(8,))


def test_segmented_point_factory_is_picklable_and_stable():
    import pickle

    from repro.core.analysis_cache import design_fingerprint
    from repro.flows import DesignPoint
    from repro.workloads import SegmentedPointFactory

    factory = SegmentedPointFactory(segments=SEGMENTS, inputs=(8, 16))
    clone = pickle.loads(pickle.dumps(factory))
    point = DesignPoint(name="p0", latency=4, clock_period=1500.0)
    assert design_fingerprint(clone(point)) == design_fingerprint(factory(point))
