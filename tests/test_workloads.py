"""Tests for the workload generators."""

import pytest

from repro.ir.operations import OpKind
from repro.ir.validate import validate_design
from repro.workloads import (
    dct_butterfly_design,
    fft_stage_design,
    fir_design,
    idct_design,
    interpolation_design,
    matmul_design,
    random_layered_design,
    resizer_design,
    resizer_main_design,
    sobel_design,
)


def test_interpolation_matches_paper_op_counts(interpolation):
    counts = interpolation.dfg.count_by_kind()
    assert counts[OpKind.MUL] == 7
    assert counts[OpKind.ADD] == 4
    assert counts[OpKind.WRITE] == 1
    assert interpolation.num_states == 3
    assert interpolation.clock_period == 1100.0


def test_interpolation_unroll_scales_op_counts():
    design = interpolation_design(unroll=6, num_states=4)
    counts = design.dfg.count_by_kind()
    assert counts[OpKind.MUL] == 11   # 6 x-updates + 5 deltaX updates
    assert counts[OpKind.ADD] == 6
    assert design.num_states == 4


def test_interpolation_rejects_bad_parameters():
    with pytest.raises(ValueError):
        interpolation_design(unroll=0)
    with pytest.raises(ValueError):
        interpolation_design(num_states=0)


def test_resizer_main_matches_fig5():
    design = resizer_main_design()
    names = {op.name for op in design.dfg.operations if op.kind is not OpKind.CONST}
    assert names == {"rd_a", "add", "div", "sub", "rd_b", "mul", "mux", "wr"}
    assert design.cfg.has_edge("e8")
    assert design.cfg.edge("e8").backward


def test_resizer_full_adds_condition_and_index():
    design = resizer_design()
    assert design.dfg.has_op("cmp")
    assert design.dfg.op("cmp").attrs.get("branch_condition")
    assert design.dfg.has_op("i_add")
    assert any(e.backward for e in design.dfg.edges)


def test_idct_op_counts_scale_with_rows():
    one = idct_design(latency=8, rows=1)
    two = idct_design(latency=8, rows=2)
    count_one = one.dfg.count_by_kind()
    count_two = two.dfg.count_by_kind()
    assert count_one[OpKind.MUL] == 14
    assert count_two[OpKind.MUL] == 28
    assert count_one[OpKind.READ] == 8
    assert count_one[OpKind.WRITE] == 8


def test_idct_two_dimensional_doubles_the_passes():
    flat = idct_design(latency=16, rows=8)
    full = idct_design(latency=16, rows=8, two_dimensional=True)
    assert full.dfg.count_by_kind()[OpKind.MUL] == \
        2 * flat.dfg.count_by_kind()[OpKind.MUL]


def test_idct_rejects_bad_parameters():
    with pytest.raises(ValueError):
        idct_design(latency=1)
    with pytest.raises(ValueError):
        idct_design(rows=0)


def test_all_kernels_validate(library):
    designs = [
        fir_design(taps=4, latency=3),
        matmul_design(size=2, latency=4),
        dct_butterfly_design(latency=3),
        fft_stage_design(points=4, latency=3),
        sobel_design(latency=3),
        idct_design(latency=8, rows=1),
        interpolation_design(),
        resizer_design(),
        resizer_main_design(),
        random_layered_design(seed=7),
    ]
    for design in designs:
        warnings = validate_design(design)
        assert isinstance(warnings, list)
        assert design.dfg.num_operations > 0


def test_random_generator_is_deterministic():
    a = random_layered_design(seed=3, layers=3, ops_per_layer=4)
    b = random_layered_design(seed=3, layers=3, ops_per_layer=4)
    assert [op.name for op in a.dfg.operations] == [op.name for op in b.dfg.operations]
    assert [op.kind for op in a.dfg.operations] == [op.kind for op in b.dfg.operations]
    c = random_layered_design(seed=4, layers=3, ops_per_layer=4)
    assert [op.kind for op in a.dfg.operations] != [op.kind for op in c.dfg.operations]


def test_kernel_parameter_validation():
    with pytest.raises(ValueError):
        fir_design(taps=0)
    with pytest.raises(ValueError):
        matmul_design(size=0)
    with pytest.raises(ValueError):
        fft_stage_design(points=3)
    with pytest.raises(ValueError):
        random_layered_design(layers=0)
