"""Scenario generation: determinism, diversity, serialisation, buildability."""

import pytest

from repro.core.analysis_cache import design_fingerprint
from repro.errors import ReproError
from repro.ir.cfg import NodeKind
from repro.ir.validate import validate_design
from repro.verify.scenarios import (
    ScenarioProfile,
    ScenarioSpec,
    generate_pipelined_scenario,
    generate_scenario,
    scenario_stream,
)


def test_generate_scenario_is_deterministic_per_seed():
    a = generate_scenario(7)
    b = generate_scenario(7)
    assert a == b
    assert a.fingerprint() == b.fingerprint()
    assert generate_scenario(8) != a


def test_generate_scenario_resolves_seed_none_replayably():
    spec = generate_scenario(None)
    assert isinstance(spec.seed, int)
    assert generate_scenario(spec.seed) == spec


def test_scenario_stream_is_deterministic_and_seed_disjoint():
    first = [spec for _, spec in scenario_stream(0, 10)]
    again = [spec for _, spec in scenario_stream(0, 10)]
    assert first == again
    other = [spec for _, spec in scenario_stream(1, 10)]
    assert first != other


def test_scenario_stream_covers_control_flow_and_width_diversity():
    """The ROADMAP's "as many scenarios as you can imagine": one short
    stream already mixes straight-line and branchy CFGs, several width
    profiles and several clock periods."""
    specs = [spec for _, spec in scenario_stream(0, 60)]
    assert any(
        any(segment[0] == "diamond" for segment in spec.segments)
        for spec in specs
    )
    assert any(
        all(segment[0] == "linear" for segment in spec.segments)
        for spec in specs
    )
    assert len({spec.profile for spec in specs}) >= 2
    assert len({spec.clock_period for spec in specs}) >= 2
    assert len({spec.margin_fraction for spec in specs}) >= 2


def _structural_problems(design):
    """Validation messages minus benign dangling-value warnings (generated
    scenarios may legitimately leave an input port unread downstream)."""
    return [message for message in validate_design(design)
            if "dangling" not in message]


@pytest.mark.parametrize("seed", range(0, 40, 4))
def test_every_generated_scenario_builds_a_valid_design(seed):
    spec = generate_scenario(seed)
    design = spec.design()
    assert _structural_problems(design) == []
    assert design.dfg.num_operations == spec.num_design_ops()
    assert len(design.cfg.state_nodes) == spec.num_states()
    branchy = any(segment[0] == "diamond" for segment in spec.segments)
    has_branch = any(node.kind is NodeKind.BRANCH for node in design.cfg.nodes)
    assert branchy == has_branch


def test_spec_json_round_trip_is_lossless():
    spec = generate_scenario(11)
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec
    # And through an actual JSON encode/decode cycle.
    import json

    decoded = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert decoded == spec
    assert decoded.fingerprint() == spec.fingerprint()


def test_spec_from_dict_rejects_unknown_schema():
    data = generate_scenario(0).to_dict()
    data["schema"] = 99
    with pytest.raises(ReproError):
        ScenarioSpec.from_dict(data)


def test_scenario_profile_caps_segments():
    profile = ScenarioProfile(max_segments=1)
    for seed in range(10):
        assert len(generate_scenario(seed, profile=profile).segments) == 1


def test_factory_and_point_carry_the_spec_knobs():
    spec = generate_scenario(13)
    point = spec.point()
    assert point.clock_period == spec.clock_period
    assert point.pipeline_ii == spec.pipeline_ii
    assert point.latency == spec.num_states()
    factory = spec.factory()
    assert design_fingerprint(factory(point)) == spec.fingerprint()


def test_pipelined_scenarios_are_straight_line_only():
    pipelined = [spec for _, spec in scenario_stream(0, 300)
                 if spec.pipeline_ii is not None]
    assert pipelined, "the stream never drew a pipelined scenario"
    for spec in pipelined:
        assert all(segment[0] == "linear" for segment in spec.segments)
        assert 1 <= spec.pipeline_ii <= spec.num_states()


def test_pipelined_scenarios_may_carry_loop_dependences():
    pipelined = [spec for _, spec in scenario_stream(0, 300)
                 if spec.pipeline_ii is not None]
    carried = [spec for spec in pipelined if spec.carried]
    assert carried, "no pipelined scenario drew a carried dependence"
    for spec in carried:
        design = spec.design()
        assert _structural_problems(design) == []
    # At least one spec's carried triples survive as backward DFG edges
    # (modulo-repair may drop triples only when no op consumes operands).
    assert any(spec.design().dfg.backward_edges for spec in carried)


@pytest.mark.parametrize("seed", range(6))
def test_generate_pipelined_scenario_guarantees_the_family(seed):
    spec = generate_pipelined_scenario(seed)
    assert spec.pipeline_ii is not None
    assert spec.carried
    assert all(segment[0] == "linear" for segment in spec.segments)
    design = spec.design()
    assert _structural_problems(design) == []
    # Deterministic and replayable like the base generator.
    assert generate_pipelined_scenario(seed) == spec


def test_carried_field_round_trips_and_defaults_empty():
    spec = generate_pipelined_scenario(3)
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec
    legacy = spec.to_dict()
    del legacy["carried"]
    assert ScenarioSpec.from_dict(legacy).carried == ()
