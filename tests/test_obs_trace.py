"""Tests of the hierarchical span tracer (repro.obs.trace)."""

import threading

import pytest

from repro.obs.trace import (
    Span,
    Tracer,
    active_tracer,
    disable,
    enable,
    is_enabled,
    span,
    traced,
    tracing,
)
from repro.obs.trace import _NULL_SPAN


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing disabled."""
    disable()
    yield
    disable()


# -- Span data model ---------------------------------------------------------------


def test_span_duration_and_self_time_partition():
    root = Span("root", start=0.0, end=10.0)
    root.children = [Span("a", start=1.0, end=4.0),
                     Span("b", start=4.0, end=9.0)]
    assert root.duration == 10.0
    assert root.self_time == pytest.approx(2.0)
    # Self times over the whole tree partition the root duration exactly.
    assert sum(s.self_time for s in root.walk()) == pytest.approx(root.duration)


def test_self_time_is_clamped_at_zero():
    weird = Span("w", start=0.0, end=1.0)
    weird.children = [Span("c1", start=0.0, end=1.0),
                      Span("c2", start=0.0, end=1.0)]
    assert weird.self_time == 0.0
    backwards = Span("b", start=5.0, end=3.0)
    assert backwards.duration == 0.0


def test_span_dict_roundtrip_preserves_tree():
    root = Span("root", attrs={"design": "idct"}, start=0.0, end=2.0,
                track="main")
    child = Span("child", attrs={"n": 3}, start=0.5, end=1.5, track="main")
    root.children.append(child)
    rebuilt = Span.from_dict(root.to_dict())
    assert rebuilt.to_dict() == root.to_dict()
    assert rebuilt.children[0].attrs == {"n": 3}


def test_set_updates_attrs_and_chains():
    s = Span("s")
    assert s.set(a=1).set(b=2) is s
    assert s.attrs == {"a": 1, "b": 2}


# -- enable/disable fast path ------------------------------------------------------


def test_disabled_span_is_the_shared_noop_singleton():
    assert not is_enabled()
    assert span("anything", attr=1) is _NULL_SPAN
    assert span("other") is _NULL_SPAN  # no allocation per call
    with span("scope") as scoped:
        assert scoped is _NULL_SPAN
        scoped.set(ignored=True)  # no-op, no error


def test_enable_records_and_disable_returns_the_tracer():
    tracer = enable()
    assert is_enabled() and active_tracer() is tracer
    with span("work", kind="test"):
        pass
    assert [root.name for root in tracer.roots] == ["work"]
    assert disable() is tracer
    assert not is_enabled()


def test_nested_spans_build_a_tree_in_order():
    with tracing() as tracer:
        with span("outer"):
            with span("first"):
                pass
            with span("second"):
                with span("inner"):
                    pass
    roots = tracer.roots
    assert [r.name for r in roots] == ["outer"]
    outer = roots[0]
    assert [c.name for c in outer.children] == ["first", "second"]
    assert [c.name for c in outer.children[1].children] == ["inner"]
    assert outer.duration >= sum(c.duration for c in outer.children)


def test_tracing_scope_restores_previous_tracer():
    outer_tracer = enable()
    with tracing() as inner_tracer:
        assert active_tracer() is inner_tracer
        with span("inner-work"):
            pass
    assert active_tracer() is outer_tracer
    assert [r.name for r in inner_tracer.roots] == ["inner-work"]
    assert outer_tracer.roots == []


def test_exception_is_recorded_and_propagates():
    with tracing() as tracer:
        with pytest.raises(ValueError):
            with span("failing"):
                raise ValueError("boom")
    (root,) = tracer.roots
    assert root.attrs["error"] == "ValueError"


def test_traced_decorator_uses_qualname_and_fast_path():
    @traced()
    def work(x):
        return x + 1

    assert work(1) == 2  # disabled: no tracer, plain call
    with tracing() as tracer:
        assert work(2) == 3
    (root,) = tracer.roots
    assert root.name.endswith("work")


def test_clear_drops_recorded_roots():
    with tracing() as tracer:
        with span("a"):
            pass
        tracer.clear()
        with span("b"):
            pass
    assert [r.name for r in tracer.roots] == ["b"]


# -- threads and adoption ----------------------------------------------------------


def test_threads_record_parallel_roots_with_their_track():
    tracer = Tracer()

    def worker():
        with tracer.span("thread-work"):
            pass

    threads = [threading.Thread(target=worker, name=f"wt{i}")
               for i in range(3)]
    with tracer.span("main-work"):
        pass
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    roots = tracer.roots
    assert len(roots) == 4
    tracks = {root.track for root in roots if root.name == "thread-work"}
    assert tracks == {"wt0", "wt1", "wt2"}


def test_adopt_grafts_serialised_trees_with_track_override():
    worker = Tracer()
    with worker.span("worker-root"):
        with worker.span("worker-child"):
            pass
    exported = worker.export()

    parent = Tracer()
    parent.adopt(exported, track="worker:P0")
    (root,) = parent.roots
    assert root.name == "worker-root"
    assert {s.track for s in root.walk()} == {"worker:P0"}
    assert [c.name for c in root.children] == ["worker-child"]


def test_mismatched_pop_unwinds_instead_of_corrupting():
    tracer = Tracer()
    outer = tracer.span("outer")
    inner = tracer.span("inner")
    outer.__enter__()
    inner.__enter__()
    # The instrumented frame leaked `inner` and popped `outer` directly.
    outer.__exit__(None, None, None)
    (root,) = tracer.roots
    assert root.name == "outer"
