"""Tests for sequential slack and aligned slack."""

import pytest

from repro.core.sequential_slack import (
    TimingResult,
    aligned_required,
    aligned_start,
    compute_sequential_slack,
)
from repro.core.timed_dfg import TimedDFG, build_timed_dfg
from repro.errors import TimingError


def chain_dfg(num_ops=3, weight=0):
    """a0 -> a1 -> ... chain with constant edge weights and sinks."""
    timed = TimedDFG("chain")
    for i in range(num_ops):
        timed.add_node(f"a{i}")
    for i in range(num_ops - 1):
        timed.add_edge(f"a{i}", f"a{i+1}", weight)
    for i in range(num_ops):
        timed.add_node(f"__sink__a{i}")
        timed.add_edge(f"a{i}", f"__sink__a{i}", 0)
    return timed


def test_combinational_chain_slack():
    timed = chain_dfg(3, weight=0)
    delays = {"a0": 100.0, "a1": 200.0, "a2": 300.0}
    result = compute_sequential_slack(timed, delays, clock_period=1000.0)
    # Arrival times accumulate, required times leave exactly the path slack.
    assert result.arrival["a0"] == 0.0
    assert result.arrival["a1"] == 100.0
    assert result.arrival["a2"] == 300.0
    assert result.slack["a0"] == pytest.approx(400.0)
    assert result.slack["a1"] == pytest.approx(400.0)
    assert result.slack["a2"] == pytest.approx(400.0)


def test_state_crossing_credits_one_clock_period():
    timed = chain_dfg(2, weight=1)
    delays = {"a0": 600.0, "a1": 600.0}
    result = compute_sequential_slack(timed, delays, clock_period=1000.0)
    # a0 has the remainder of its own cycle; a1 additionally inherits the
    # unused part of the previous cycle (sequential, not combinational, slack).
    assert result.slack["a0"] == pytest.approx(400.0)
    assert result.slack["a1"] == pytest.approx(800.0)


def test_negative_slack_detected_when_chain_exceeds_period():
    timed = chain_dfg(2, weight=0)
    delays = {"a0": 700.0, "a1": 700.0}
    result = compute_sequential_slack(timed, delays, clock_period=1000.0)
    assert result.worst_slack() == pytest.approx(-400.0)
    assert not result.is_feasible()
    assert set(result.critical_operations()) == {"a0", "a1"}


def test_critical_path_ops_share_minimum_slack(resizer_main, library):
    timed = build_timed_dfg(resizer_main)
    delays = {op.name: 100.0 for op in resizer_main.dfg.operations}
    result = compute_sequential_slack(timed, delays, clock_period=500.0)
    worst = result.worst_slack()
    critical = result.critical_operations()
    assert critical
    for name in critical:
        assert result.slack[name] == pytest.approx(worst)


def test_aligned_start_pushes_across_boundary():
    assert aligned_start(0.0, 400.0, 1000.0) == 0.0
    assert aligned_start(700.0, 400.0, 1000.0) == 1000.0
    # Negative times live in earlier cycles; the same rule applies there.
    assert aligned_start(-700.0, 400.0, 1000.0) == -700.0
    assert aligned_start(-300.0, 400.0, 1000.0) == 0.0
    # Delays longer than the period cannot be aligned.
    assert aligned_start(700.0, 1200.0, 1000.0) == 700.0


def test_aligned_required_pulls_back_inside_cycle():
    assert aligned_required(500.0, 400.0, 1000.0) == 500.0
    assert aligned_required(800.0, 400.0, 1000.0) == 600.0
    assert aligned_required(1800.0, 400.0, 1000.0) == 1600.0


def test_aligned_slack_never_exceeds_plain_slack(resizer_main, library):
    timed = build_timed_dfg(resizer_main)
    delays = {}
    for op in resizer_main.dfg.operations:
        if op.is_synthesizable:
            delays[op.name] = library.fastest_variant(op).delay
        else:
            delays[op.name] = 0.0
    plain = compute_sequential_slack(timed, delays, 1500.0, aligned=False)
    aligned = compute_sequential_slack(timed, delays, 1500.0, aligned=True)
    for name in plain.slack:
        assert aligned.slack[name] <= plain.slack[name] + 1e-6


def test_aligned_mode_forbids_boundary_crossing_chains():
    timed = chain_dfg(2, weight=1)
    delays = {"a0": 800.0, "a1": 800.0}
    plain = compute_sequential_slack(timed, delays, 1000.0, aligned=False)
    aligned = compute_sequential_slack(timed, delays, 1000.0, aligned=True)
    # Plain slack lets a1 start mid-cycle; aligned slack pushes it to the
    # boundary, reducing a0's downstream requirement.
    assert aligned.slack["a1"] <= plain.slack["a1"] + 1e-6
    assert aligned.slack["a0"] == pytest.approx(200.0)


def test_result_helpers():
    timed = chain_dfg(2, weight=0)
    delays = {"a0": 100.0, "a1": 200.0}
    result = compute_sequential_slack(timed, delays, 1000.0)
    rows = result.to_rows()
    assert len(rows) == 2
    assert result.operations_with_slack_above(0.0) == ["a0", "a1"]
    binned = result.binned_slack(50.0)
    assert all(abs(v % 50.0) < 1e-6 for v in binned.values())
    assert result.slack_of("a0") == result.slack["a0"]
    with pytest.raises(TimingError):
        result.slack_of("missing")


def test_invalid_clock_period_rejected():
    timed = chain_dfg(2)
    with pytest.raises(TimingError):
        compute_sequential_slack(timed, {}, 0.0)
