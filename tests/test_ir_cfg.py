"""Unit tests for repro.ir.cfg."""

import pytest

from repro.errors import IRError
from repro.ir.cfg import CFG, NodeKind


def make_diamond():
    """start -e1-> branch -e2/e3-> (s0|s1) -e4/e5-> merge -e6-> s2 -e7-> bottom."""
    cfg = CFG("diamond")
    cfg.add_node("start", NodeKind.START)
    cfg.add_node("branch", NodeKind.BRANCH)
    cfg.add_node("s0", NodeKind.STATE)
    cfg.add_node("s1", NodeKind.STATE)
    cfg.add_node("merge", NodeKind.MERGE)
    cfg.add_node("s2", NodeKind.STATE)
    cfg.add_node("bottom", NodeKind.PLAIN)
    cfg.add_edge("e1", "start", "branch")
    cfg.add_edge("e2", "branch", "s0")
    cfg.add_edge("e3", "branch", "s1")
    cfg.add_edge("e4", "s0", "merge")
    cfg.add_edge("e5", "s1", "merge")
    cfg.add_edge("e6", "merge", "s2")
    cfg.add_edge("e7", "s2", "bottom")
    cfg.add_edge("e8", "bottom", "start")
    return cfg


def test_duplicate_node_and_edge_names_rejected():
    cfg = CFG()
    cfg.add_node("a", NodeKind.START)
    with pytest.raises(IRError):
        cfg.add_node("a")
    cfg.add_node("b")
    cfg.add_edge("e", "a", "b")
    with pytest.raises(IRError):
        cfg.add_edge("e", "a", "b")


def test_edge_with_unknown_endpoint_rejected():
    cfg = CFG()
    cfg.add_node("a", NodeKind.START)
    with pytest.raises(IRError):
        cfg.add_edge("e", "a", "missing")


def test_single_start_node_enforced():
    cfg = CFG()
    cfg.add_node("a", NodeKind.START)
    with pytest.raises(IRError):
        cfg.add_node("b", NodeKind.START)


def test_backward_edge_classification():
    cfg = make_diamond()
    cfg.classify_backward_edges()
    backward = {e.name for e in cfg.backward_edges}
    assert backward == {"e8"}
    assert {e.name for e in cfg.forward_edges} == {f"e{i}" for i in range(1, 8)}


def test_forced_backward_flag_is_preserved():
    cfg = CFG()
    cfg.add_node("a", NodeKind.START)
    cfg.add_node("b", NodeKind.STATE)
    cfg.add_edge("fwd", "a", "b")
    cfg.add_edge("back", "b", "a", backward=True)
    cfg.classify_backward_edges()
    assert cfg.edge("back").backward
    assert not cfg.edge("fwd").backward


def test_state_nodes_listed():
    cfg = make_diamond()
    assert sorted(cfg.state_nodes) == ["s0", "s1", "s2"]


def test_topological_nodes_respects_forward_edges():
    cfg = make_diamond()
    order = cfg.topological_nodes()
    assert order.index("start") < order.index("branch")
    assert order.index("branch") < order.index("merge")
    assert order.index("merge") < order.index("s2")
    assert len(order) == cfg.num_nodes


def test_topological_edges_orders_by_reachability():
    cfg = make_diamond()
    order = cfg.topological_edges()
    assert order.index("e1") < order.index("e2")
    assert order.index("e2") < order.index("e6")
    assert order.index("e6") < order.index("e7")
    assert "e8" not in order  # backward edges are excluded


def test_edge_reachability():
    cfg = make_diamond()
    assert cfg.edge_reachable("e1", "e7")
    assert cfg.edge_reachable("e2", "e4")
    assert not cfg.edge_reachable("e2", "e5")  # parallel branches
    assert cfg.edge_reachable("e4", "e4")      # non-strict


def test_successors_and_predecessors():
    cfg = make_diamond()
    assert set(cfg.successors("branch")) == {"s0", "s1"}
    assert set(cfg.predecessors("merge")) == {"s0", "s1"}
    assert cfg.successors("bottom") == ["start"]
    assert cfg.successors("bottom", forward_only=True) == []


def test_copy_preserves_structure():
    cfg = make_diamond()
    clone = cfg.copy()
    assert clone.num_nodes == cfg.num_nodes
    assert clone.num_edges == cfg.num_edges
    assert {e.name for e in clone.backward_edges} == {"e8"}


def test_cyclic_forward_subgraph_rejected():
    cfg = CFG()
    cfg.add_node("a", NodeKind.START)
    cfg.add_node("b", NodeKind.STATE)
    cfg.add_node("c", NodeKind.STATE)
    cfg.add_edge("e1", "a", "b")
    cfg.add_edge("e2", "b", "c", backward=False)
    # Force both cycle edges forward so the classification cannot fix it.
    cfg.add_edge("e3", "c", "b", backward=False)
    with pytest.raises(IRError):
        cfg.topological_nodes()


def test_unknown_lookups_raise():
    cfg = make_diamond()
    with pytest.raises(IRError):
        cfg.node("nope")
    with pytest.raises(IRError):
        cfg.edge("nope")
    with pytest.raises(IRError):
        cfg.out_edges("nope")
