"""Unit tests for repro.ir.cfg."""

import pytest

from repro.errors import IRError
from repro.ir.cfg import CFG, NodeKind


def make_diamond():
    """start -e1-> branch -e2/e3-> (s0|s1) -e4/e5-> merge -e6-> s2 -e7-> bottom."""
    cfg = CFG("diamond")
    cfg.add_node("start", NodeKind.START)
    cfg.add_node("branch", NodeKind.BRANCH)
    cfg.add_node("s0", NodeKind.STATE)
    cfg.add_node("s1", NodeKind.STATE)
    cfg.add_node("merge", NodeKind.MERGE)
    cfg.add_node("s2", NodeKind.STATE)
    cfg.add_node("bottom", NodeKind.PLAIN)
    cfg.add_edge("e1", "start", "branch")
    cfg.add_edge("e2", "branch", "s0")
    cfg.add_edge("e3", "branch", "s1")
    cfg.add_edge("e4", "s0", "merge")
    cfg.add_edge("e5", "s1", "merge")
    cfg.add_edge("e6", "merge", "s2")
    cfg.add_edge("e7", "s2", "bottom")
    cfg.add_edge("e8", "bottom", "start")
    return cfg


def test_duplicate_node_and_edge_names_rejected():
    cfg = CFG()
    cfg.add_node("a", NodeKind.START)
    with pytest.raises(IRError):
        cfg.add_node("a")
    cfg.add_node("b")
    cfg.add_edge("e", "a", "b")
    with pytest.raises(IRError):
        cfg.add_edge("e", "a", "b")


def test_edge_with_unknown_endpoint_rejected():
    cfg = CFG()
    cfg.add_node("a", NodeKind.START)
    with pytest.raises(IRError):
        cfg.add_edge("e", "a", "missing")


def test_single_start_node_enforced():
    cfg = CFG()
    cfg.add_node("a", NodeKind.START)
    with pytest.raises(IRError):
        cfg.add_node("b", NodeKind.START)


def test_backward_edge_classification():
    cfg = make_diamond()
    cfg.classify_backward_edges()
    backward = {e.name for e in cfg.backward_edges}
    assert backward == {"e8"}
    assert {e.name for e in cfg.forward_edges} == {f"e{i}" for i in range(1, 8)}


def test_forced_backward_flag_is_preserved():
    cfg = CFG()
    cfg.add_node("a", NodeKind.START)
    cfg.add_node("b", NodeKind.STATE)
    cfg.add_edge("fwd", "a", "b")
    cfg.add_edge("back", "b", "a", backward=True)
    cfg.classify_backward_edges()
    assert cfg.edge("back").backward
    assert not cfg.edge("fwd").backward


def test_state_nodes_listed():
    cfg = make_diamond()
    assert sorted(cfg.state_nodes) == ["s0", "s1", "s2"]


def test_topological_nodes_respects_forward_edges():
    cfg = make_diamond()
    order = cfg.topological_nodes()
    assert order.index("start") < order.index("branch")
    assert order.index("branch") < order.index("merge")
    assert order.index("merge") < order.index("s2")
    assert len(order) == cfg.num_nodes


def test_topological_edges_orders_by_reachability():
    cfg = make_diamond()
    order = cfg.topological_edges()
    assert order.index("e1") < order.index("e2")
    assert order.index("e2") < order.index("e6")
    assert order.index("e6") < order.index("e7")
    assert "e8" not in order  # backward edges are excluded


def test_edge_reachability():
    cfg = make_diamond()
    assert cfg.edge_reachable("e1", "e7")
    assert cfg.edge_reachable("e2", "e4")
    assert not cfg.edge_reachable("e2", "e5")  # parallel branches
    assert cfg.edge_reachable("e4", "e4")      # non-strict


def test_successors_and_predecessors():
    cfg = make_diamond()
    assert set(cfg.successors("branch")) == {"s0", "s1"}
    assert set(cfg.predecessors("merge")) == {"s0", "s1"}
    assert cfg.successors("bottom") == ["start"]
    assert cfg.successors("bottom", forward_only=True) == []


def test_copy_preserves_structure():
    cfg = make_diamond()
    clone = cfg.copy()
    assert clone.num_nodes == cfg.num_nodes
    assert clone.num_edges == cfg.num_edges
    assert {e.name for e in clone.backward_edges} == {"e8"}


def test_cyclic_forward_subgraph_rejected():
    cfg = CFG()
    cfg.add_node("a", NodeKind.START)
    cfg.add_node("b", NodeKind.STATE)
    cfg.add_node("c", NodeKind.STATE)
    cfg.add_edge("e1", "a", "b")
    cfg.add_edge("e2", "b", "c", backward=False)
    # Force both cycle edges forward so the classification cannot fix it.
    cfg.add_edge("e3", "c", "b", backward=False)
    with pytest.raises(IRError):
        cfg.topological_nodes()


def make_nested():
    """Two nested natural loops: inner s1->h2, outer s2->h1."""
    cfg = CFG("nested")
    cfg.add_node("start", NodeKind.START)
    for name in ("h1", "h2", "s1", "s2"):
        cfg.add_node(name, NodeKind.STATE)
    cfg.add_edge("e1", "start", "h1")
    cfg.add_edge("e2", "h1", "h2")
    cfg.add_edge("e3", "h2", "s1")
    cfg.add_edge("inner_back", "s1", "h2")
    cfg.add_edge("e4", "s1", "s2")
    cfg.add_edge("outer_back", "s2", "h1")
    return cfg


def test_nested_loops_classify_both_back_edges():
    cfg = make_nested()
    cfg.classify_backward_edges()
    assert {e.name for e in cfg.backward_edges} == {"inner_back", "outer_back"}
    # The forward subgraph is acyclic, so orderings work.
    order = cfg.topological_nodes()
    assert order.index("h1") < order.index("h2") < order.index("s2")


def test_nested_loop_regions_are_outer_first_and_properly_nested():
    regions = make_nested().loop_regions()
    assert [r.header for r in regions] == ["h1", "h2"]
    outer, inner = regions
    assert outer.back_edges == ("outer_back",)
    assert outer.body == ("h1", "h2", "s1", "s2")
    assert inner.back_edges == ("inner_back",)
    assert inner.body == ("h2", "s1")
    # Proper nesting: the inner body is contained in the outer body.
    assert set(inner.body) < set(outer.body)


def test_irreducible_two_entry_cycle_still_classifies_and_orders():
    """Two entries into the x<->y cycle (irreducible in the classic sense):
    DFS order decides the single back edge, the forward subgraph stays
    acyclic, and the natural-loop body balloons to include the second
    entry path — the documented caveat of natural loops on irreducible
    graphs, pinned here so a rewrite cannot silently change it."""
    cfg = CFG("irr")
    cfg.add_node("start", NodeKind.START)
    cfg.add_node("x", NodeKind.STATE)
    cfg.add_node("y", NodeKind.STATE)
    cfg.add_edge("a", "start", "x")
    cfg.add_edge("b", "start", "y")   # second entry into the cycle
    cfg.add_edge("c", "x", "y")
    cfg.add_edge("d", "y", "x")
    cfg.classify_backward_edges()
    assert {e.name for e in cfg.backward_edges} == {"d"}
    assert cfg.topological_nodes() == ["start", "x", "y"]
    regions = cfg.loop_regions()
    assert len(regions) == 1
    assert regions[0].header == "x"
    assert "start" in regions[0].body  # reaches the tail y, header not on path


def test_loop_regions_merge_back_edges_sharing_a_header():
    cfg = CFG("shared")
    cfg.add_node("start", NodeKind.START)
    cfg.add_node("h", NodeKind.STATE)
    cfg.add_node("t1", NodeKind.STATE)
    cfg.add_node("t2", NodeKind.STATE)
    cfg.add_edge("e1", "start", "h")
    cfg.add_edge("e2", "h", "t1")
    cfg.add_edge("e3", "t1", "t2")
    cfg.add_edge("back1", "t1", "h")
    cfg.add_edge("back2", "t2", "h")
    regions = cfg.loop_regions()
    assert len(regions) == 1
    assert regions[0].back_edges == ("back1", "back2")
    assert regions[0].body == ("h", "t1", "t2")


def test_loop_regions_empty_without_back_edges():
    cfg = CFG("dag")
    cfg.add_node("start", NodeKind.START)
    cfg.add_node("s", NodeKind.STATE)
    cfg.add_edge("e1", "start", "s")
    assert cfg.loop_regions() == []


def test_unknown_lookups_raise():
    cfg = make_diamond()
    with pytest.raises(IRError):
        cfg.node("nope")
    with pytest.raises(IRError):
        cfg.edge("nope")
    with pytest.raises(IRError):
        cfg.out_edges("nope")
