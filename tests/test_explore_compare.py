"""Tests of frontier comparison and the frontier reports."""

import json

import pytest

from repro.errors import ReproError
from repro.explore.adaptive import ExplorationResult
from repro.explore.compare import (
    compare_flows,
    compare_frontiers,
    compare_workloads,
    flow_frontiers,
)
from repro.explore.pareto import FrontPoint, pareto_front
from repro.explore.report import (
    diff_rows,
    frontier_report,
    frontier_rows,
    render_markdown,
    write_report,
)

OBJECTIVES = ("latency_steps", "area")


def points(vectors, labels=None):
    return [FrontPoint(label=(labels[i] if labels else f"p{i}"),
                       objectives=OBJECTIVES,
                       values=tuple(float(v) for v in vector))
            for i, vector in enumerate(vectors)]


def metrics_record(name, latency, slack_area, conv_area):
    flow = {"power": 1.0, "throughput": 1.0 / latency,
            "latency_steps": latency, "meets_timing": True,
            "fu_instances": 1, "registers": 1}
    return {
        "point": {"name": name, "latency": latency, "pipeline_ii": None,
                  "clock_period": 1500.0},
        "slack_based": dict(flow, area=slack_area),
        "conventional": dict(flow, area=conv_area),
        "saving_percent": 100.0 * (conv_area - slack_area) / conv_area,
    }


class TestCompareFrontiers:
    def test_identical_frontiers(self):
        front = points([[4, 100], [8, 50]])
        diff = compare_frontiers(front, front)
        assert diff.coverage_ab == diff.coverage_ba == 1.0
        assert diff.only_in_a == [] and diff.only_in_b == []
        assert diff.hypervolume_a == pytest.approx(diff.hypervolume_b)
        assert diff.hypervolume_ratio == pytest.approx(1.0)

    def test_strictly_better_frontier_dominates_the_diff(self):
        better = points([[4, 80], [8, 40]], labels=["b1", "b2"])
        worse = points([[4, 100], [8, 50]], labels=["w1", "w2"])
        diff = compare_frontiers(better, worse, name_a="better", name_b="worse")
        assert diff.coverage_ab == 1.0      # better covers all of worse
        assert diff.coverage_ba == 0.0      # worse covers none of better
        assert [p.label for p in diff.only_in_a] == ["b1", "b2"]
        assert diff.only_in_b == []
        assert diff.hypervolume_a > diff.hypervolume_b
        assert diff.hypervolume_ratio > 1.0

    def test_epsilon_blurs_small_differences(self):
        near = points([[4, 103]])
        exact = points([[4, 100]])
        assert compare_frontiers(near, exact).coverage_ab == 0.0
        assert compare_frontiers(near, exact,
                                 epsilon=("rel", 0.05)).coverage_ab == 1.0

    def test_mismatched_objectives_raise(self):
        a = points([[1, 2]])
        b = [FrontPoint(label="x", objectives=("area", "power"),
                        values=(1.0, 2.0))]
        with pytest.raises(ReproError):
            compare_frontiers(a, b)

    def test_summary_is_json_safe(self):
        diff = compare_frontiers(points([[4, 80]]), points([[4, 100]]))
        json.dumps(diff.summary())


class TestFlowAndWorkloadComparison:
    SWEEP = [metrics_record("L4", 4, 120.0, 150.0),
             metrics_record("L6", 6, 90.0, 100.0),
             metrics_record("L8", 8, 80.0, 95.0)]

    def test_flow_frontiers_extract_both_flows(self):
        fronts = flow_frontiers(self.SWEEP)
        assert set(fronts) == {"conventional", "slack_based"}
        assert all(fronts.values())

    def test_compare_flows_slack_wins_everywhere_here(self):
        diff = compare_flows(self.SWEEP)
        assert diff.name_a == "slack_based"
        assert diff.coverage_ab == 1.0
        assert diff.hypervolume_ratio >= 1.0

    def test_compare_workloads_pairwise(self):
        other = [metrics_record("K4", 4, 60.0, 70.0),
                 metrics_record("K6", 6, 50.0, 55.0)]
        diffs = compare_workloads({"idct": self.SWEEP, "kernel": other})
        assert set(diffs) == {("idct", "kernel")}
        diff = diffs[("idct", "kernel")]
        assert diff.name_a == "idct" and diff.name_b == "kernel"
        header, rows = diff_rows(diffs)
        assert len(rows) == 1 and rows[0][0] == "idct"
        assert len(header) == len(rows[0])


def exploration_result(vectors, labels=None, mode="adaptive",
                       engine_evaluations=None):
    member_points = points(vectors, labels)
    return ExplorationResult(
        workload="synthetic", mode=mode, objectives=OBJECTIVES,
        flow="slack_based",
        curve={int(v[0]): {} for v in vectors},
        points=member_points,
        front=pareto_front(member_points),
        engine_evaluations=(engine_evaluations
                            if engine_evaluations is not None
                            else len(vectors)),
        waves=1,
    )


class TestFrontierReport:
    def test_report_shape_and_json_safety(self):
        result = exploration_result([[4, 100], [8, 50], [8, 60]])
        report = frontier_report(result)
        json.dumps(report)
        assert report["workload"] == "synthetic"
        assert report["evaluations"]["engine"] == 3
        assert report["evaluations"]["flow_runs"] == 6
        assert [entry["label"] for entry in report["front"]] == ["p0", "p1"]
        assert report["front"][0]["area"] == 100.0
        assert report["hypervolume"] > 0
        assert report["knee"] in ("p0", "p1")

    def test_report_with_baseline_records_recovery(self):
        adaptive = exploration_result([[4, 100], [8, 50]],
                                      engine_evaluations=2)
        dense = exploration_result([[4, 100], [6, 70], [8, 50]], mode="dense",
                                   engine_evaluations=6)
        report = frontier_report(adaptive, baseline=dense,
                                 epsilon=(2.0, ("rel", 0.1)))
        recovery = report["recovery"]
        assert recovery["coverage_of_baseline_front"] == 1.0
        assert recovery["evaluation_saving_factor"] == pytest.approx(3.0)
        assert report["baseline"]["front_size"] == 3

    def test_markdown_rendering_mentions_the_essentials(self):
        result = exploration_result([[4, 100], [8, 50]])
        text = render_markdown(frontier_report(result))
        assert "synthetic" in text
        assert "| point" in text
        assert "hypervolume" in text
        assert "nan" not in text

    def test_empty_front_renders_without_crashing(self):
        result = exploration_result([])
        report = frontier_report(result)
        assert report["front"] == []
        assert report["knee"] is None
        assert "n/a" in render_markdown(report) or report["hypervolume"] == 0.0

    def test_frontier_rows_and_write_report(self, tmp_path):
        result = exploration_result([[4, 100], [8, 50]])
        header, rows = frontier_rows(result.front)
        assert header == ["point", "latency_steps", "area"]
        assert len(rows) == 2

        json_path = tmp_path / "out" / "frontier.json"
        md_path = tmp_path / "out" / "frontier.md"
        write_report(frontier_report(result), json_path=str(json_path),
                     markdown_path=str(md_path))
        loaded = json.loads(json_path.read_text())
        assert loaded["workload"] == "synthetic"
        assert md_path.read_text().startswith("# Frontier report")
