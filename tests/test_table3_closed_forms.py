"""Reproduction of the paper's Table 3: sequential slack closed forms.

With I/O delay ``d``, operation delay ``D`` and clock period ``T`` such that
``D + d < T < 2*D``, the arrival/required/slack of every operation of the
resizer "main computation" DFG must match the closed-form expressions of the
paper's Table 3.  The spans use the strict-I/O reading (``late(mux) = e6``),
which is the one the paper's recurrences assume.
"""

import pytest

from repro.core.opspan import OperationSpans
from repro.core.sequential_slack import compute_sequential_slack
from repro.core.timed_dfg import build_timed_dfg
from repro.workloads import resizer_main_design


def expected_rows(d, D, T):
    """The closed forms of paper Table 3 (arrival, required, slack per op)."""
    return {
        "rd_a": (0.0, 2 * T - 4 * D - d, 2 * T - 4 * D - d),
        "add": (d, 2 * T - 4 * D, 2 * T - 4 * D - d),
        "div": (d + D, 2 * T - 3 * D, 2 * T - 4 * D - d),
        "sub": (d + 2 * D, 2 * T - 2 * D, 2 * T - 4 * D - d),
        "rd_b": (0.0, T - 2 * D - d, T - 2 * D - d),
        "mul": (d, T - 2 * D, T - 2 * D - d),
        "mux": (d + 3 * D - T, T - D, 2 * T - 4 * D - d),
        "wr": (d + 4 * D - 2 * T, T - d, 3 * T - 4 * D - 2 * d),
    }


PARAMETER_SETS = [
    (50.0, 700.0, 1200.0),
    (100.0, 600.0, 1000.0),
    (10.0, 500.0, 900.0),
    (25.0, 800.0, 1500.0),
]


@pytest.fixture(scope="module")
def timed_and_design():
    design = resizer_main_design()
    spans = OperationSpans(design, strict_io_successors=True)
    timed = build_timed_dfg(design, spans=spans)
    return design, timed


def delays_for(design, d, D):
    delays = {}
    for op in design.dfg.operations:
        if op.name in ("rd_a", "rd_b", "wr"):
            delays[op.name] = d
        elif op.name in ("add", "div", "sub", "mul", "mux"):
            delays[op.name] = D
    return delays


@pytest.mark.parametrize("d,D,T", PARAMETER_SETS)
def test_table3_arrival_required_slack(timed_and_design, d, D, T):
    assert D + d < T < 2 * D, "parameter set violates the paper's regime"
    design, timed = timed_and_design
    result = compute_sequential_slack(timed, delays_for(design, d, D), T,
                                      aligned=False)
    for op, (arr, req, slack) in expected_rows(d, D, T).items():
        assert result.arrival[op] == pytest.approx(arr), f"arrival({op})"
        assert result.required[op] == pytest.approx(req), f"required({op})"
        assert result.slack[op] == pytest.approx(slack), f"slack({op})"


@pytest.mark.parametrize("d,D,T", PARAMETER_SETS)
def test_table3_critical_path(timed_and_design, d, D, T):
    """The paper's observation: rd_a -> add -> div -> sub -> mux share the
    minimum slack, i.e. they form the critical path."""
    design, timed = timed_and_design
    result = compute_sequential_slack(timed, delays_for(design, d, D), T,
                                      aligned=False)
    critical = set(result.critical_operations())
    assert critical == {"rd_a", "add", "div", "sub", "mux"}


def test_table3_slack_ordering(timed_and_design):
    """wr always has the largest slack; mul/rd_b sit between."""
    design, timed = timed_and_design
    d, D, T = 50.0, 700.0, 1200.0
    result = compute_sequential_slack(timed, delays_for(design, d, D), T)
    assert result.slack["wr"] > result.slack["mul"] > result.slack["add"]
    assert result.slack["mul"] == pytest.approx(result.slack["rd_b"])
