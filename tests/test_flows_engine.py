"""Tests of the parallel, resumable DSE engine and the DSEResult range fixes."""

import functools
import os
import pickle
from dataclasses import dataclass
from types import SimpleNamespace

import pytest

from repro.errors import ReproError
from repro.flows import (
    DesignPoint,
    DSEEngine,
    DSEEntry,
    DSEResult,
    idct_design_points,
    run_dse,
    scenario_sweep,
)
from repro.workloads import IDCTPointFactory, KernelPointFactory, RandomPointFactory


def sweep_points():
    return [
        DesignPoint(name="P0", latency=8, clock_period=1500.0),
        DesignPoint(name="P1", latency=12, clock_period=1500.0),
        DesignPoint(name="P2", latency=16, clock_period=1500.0),
    ]


class FailingFactory(IDCTPointFactory):
    """Raises on one named point; builds the IDCT everywhere else."""

    def __call__(self, point):
        if point.name == "P1":
            raise ValueError("injected failure on P1")
        return super().__call__(point)


CALL_LOG = []


class LoggingFactory(IDCTPointFactory):
    """Records which points it builds (resume regression guard)."""

    def __call__(self, point):
        CALL_LOG.append(point.name)
        return super().__call__(point)


@dataclass(frozen=True)
class MarkerFailFactory(IDCTPointFactory):
    """Fails on P1 while ``marker`` exists — a repairable transient fault."""

    marker: str = ""

    def __call__(self, point):
        if point.name == "P1" and os.path.exists(self.marker):
            raise ValueError("injected failure on P1")
        return super().__call__(point)


# -- parallel vs serial ------------------------------------------------------------


def test_parallel_engine_matches_serial_run_dse(library):
    """The acceptance criterion: a >=2-worker parallel run of the full
    15-point IDCT sweep is entry-for-entry identical to the serial baseline."""
    points = idct_design_points(clock_period=1500.0)
    factory = IDCTPointFactory(rows=1)

    serial = run_dse(factory, library, points)
    engine = DSEEngine(factory, library, points, executor="process",
                       max_workers=2)
    parallel = engine.run()

    assert not parallel.errors
    assert parallel.max_workers == 2
    assert [o.status for o in parallel.outcomes] == ["ok"] * len(points)
    # Deterministic input ordering regardless of completion order.
    assert [e.point.name for e in parallel.entries] == [p.name for p in points]
    # Identical metrics (areas, powers, throughput, latency, FU/reg counts).
    assert ([e.metrics() for e in parallel.entries]
            == [e.metrics() for e in serial.entries])
    # And identical schedules, operation for operation.
    for par, ser in zip(parallel.entries, serial.entries):
        assert (par.conventional.schedule.as_sched_map()
                == ser.conventional.schedule.as_sched_map())
        assert (par.slack_based.schedule.as_sched_map()
                == ser.slack_based.schedule.as_sched_map())
    # The DSEResult view exposes the same report surface as run_dse.
    assert (parallel.to_dse_result().average_saving_percent()
            == pytest.approx(serial.average_saving_percent()))


def test_engine_thread_and_serial_executors_agree(library):
    points = sweep_points()
    factory = IDCTPointFactory(rows=1)
    serial = DSEEngine(factory, library, points, executor="serial").run()
    threaded = DSEEngine(factory, library, points, executor="thread",
                         max_workers=2).run()
    assert ([e.metrics() for e in serial.entries]
            == [e.metrics() for e in threaded.entries])


def test_auto_executor_falls_back_to_serial_for_lambdas(library):
    points = sweep_points()[:2]
    result = DSEEngine(
        lambda point: IDCTPointFactory(rows=1)(point),
        library, points, executor="auto",
    ).run()
    assert result.executor == "serial"
    assert len(result.entries) == 2


def test_process_executor_rejects_unpicklable_factory(library):
    with pytest.raises(ReproError, match="picklable"):
        DSEEngine(lambda point: None, library, sweep_points(),
                  executor="process").run()


# -- error isolation ----------------------------------------------------------------


def test_failing_point_is_isolated(library):
    result = DSEEngine(FailingFactory(rows=1), library, sweep_points(),
                       executor="serial").run()
    assert [o.status for o in result.outcomes] == ["ok", "error", "ok"]
    failed = result.outcomes[1]
    assert "injected failure on P1" in failed.error
    assert failed.traceback and "ValueError" in failed.traceback
    # The sweep's good entries are still fully usable.
    assert len(result.entries) == 2
    assert result.to_dse_result().area_range() >= 1.0
    with pytest.raises(ReproError, match="P1"):
        result.raise_on_errors()


def test_failing_point_is_isolated_in_process_pool(library):
    result = DSEEngine(FailingFactory(rows=1), library, sweep_points(),
                       executor="process", max_workers=2).run()
    assert [o.status for o in result.outcomes] == ["ok", "error", "ok"]
    assert "injected failure on P1" in result.outcomes[1].error


# -- checkpoint / resume -----------------------------------------------------------


def test_checkpoint_resume_skips_completed_points(library, tmp_path):
    points = sweep_points()
    checkpoint = str(tmp_path / "sweep.json")
    factory = LoggingFactory(rows=1)
    first = DSEEngine(factory, library, points,
                      executor="serial", checkpoint_path=checkpoint).run()
    assert [o.status for o in first.outcomes] == ["ok"] * 3
    calls_after_first = len(CALL_LOG)

    resumed = DSEEngine(factory, library, points,
                        executor="serial", checkpoint_path=checkpoint).run()
    assert [o.status for o in resumed.outcomes] == ["restored"] * 3
    # The factory was never re-invoked for a restored point.
    assert len(CALL_LOG) == calls_after_first
    assert resumed.metrics() == [e.metrics() for e in first.entries]
    # Restored points keep contributing to sweep statistics ...
    assert (resumed.average_saving_percent()
            == pytest.approx(first.average_saving_percent()))
    # ... while the entry-based view refuses to average nothing silently.
    with pytest.raises(ReproError, match="empty sweep"):
        resumed.to_dse_result().average_saving_percent()


def test_checkpoint_resumes_partially_after_failures(library, tmp_path):
    points = sweep_points()
    checkpoint = str(tmp_path / "sweep.json")
    marker = tmp_path / "fail-marker"
    marker.write_text("fail P1")
    factory = MarkerFailFactory(rows=1, marker=str(marker))
    first = DSEEngine(factory, library, points,
                      executor="serial", checkpoint_path=checkpoint).run()
    assert [o.status for o in first.outcomes] == ["ok", "error", "ok"]

    # After the transient fault clears, the rerun retries only the failed
    # point; the good ones are restored.
    marker.unlink()
    second = DSEEngine(factory, library, points,
                       executor="serial", checkpoint_path=checkpoint).run()
    assert [o.status for o in second.outcomes] == ["restored", "ok", "restored"]
    assert len(second.metrics()) == 3


def test_checkpoint_of_a_different_sweep_is_ignored(library, tmp_path):
    checkpoint = str(tmp_path / "sweep.json")
    DSEEngine(IDCTPointFactory(rows=1), library, sweep_points(),
              executor="serial", checkpoint_path=checkpoint).run()
    other_points = sweep_points() + [DesignPoint(name="P3", latency=20,
                                                 clock_period=1500.0)]
    rerun = DSEEngine(IDCTPointFactory(rows=1), library, other_points,
                      executor="serial", checkpoint_path=checkpoint).run()
    assert [o.status for o in rerun.outcomes] == ["ok"] * 4


def test_checkpoint_of_a_different_factory_is_ignored(library, tmp_path):
    """A checkpoint must not be restored into a sweep whose workload differs
    (e.g. the same 15 points but rows=1 vs rows=2 IDCT designs)."""
    checkpoint = str(tmp_path / "sweep.json")
    points = sweep_points()
    DSEEngine(IDCTPointFactory(rows=1), library, points,
              executor="serial", checkpoint_path=checkpoint).run()
    rerun = DSEEngine(IDCTPointFactory(rows=2), library, points,
                      executor="serial", checkpoint_path=checkpoint).run()
    assert [o.status for o in rerun.outcomes] == ["ok"] * 3


def _build_idct_point(point, rows=1):
    return IDCTPointFactory(rows=rows)(point)


def test_partial_factories_fingerprint_their_arguments(library, tmp_path):
    """Regression: ``functools.partial`` has no ``__qualname__``, so every
    partial used to fingerprint as the bare class ``functools.partial`` —
    letting a checkpoint from one workload silently resume a different one.
    Partials over different arguments must not share a signature; the same
    partial rebuilt identically must still resume."""
    checkpoint = str(tmp_path / "sweep.json")
    points = sweep_points()
    DSEEngine(functools.partial(_build_idct_point, rows=1), library, points,
              executor="serial", checkpoint_path=checkpoint).run()

    mismatched = DSEEngine(functools.partial(_build_idct_point, rows=2),
                           library, points, executor="serial",
                           checkpoint_path=checkpoint).run()
    assert [o.status for o in mismatched.outcomes] == ["ok"] * 3

    resumed = DSEEngine(functools.partial(_build_idct_point, rows=2),
                        library, points, executor="serial",
                        checkpoint_path=checkpoint).run()
    assert [o.status for o in resumed.outcomes] == ["restored"] * 3


def test_partial_fingerprints_cover_func_args_and_kwargs():
    base = DSEEngine._fingerprint(functools.partial(_build_idct_point, rows=1))
    assert "functools.partial" in base
    assert "_build_idct_point" in base
    assert DSEEngine._fingerprint(
        functools.partial(_build_idct_point, rows=2)) != base
    assert DSEEngine._fingerprint(functools.partial(sweep_points)) != base
    # Positional vs keyword binding is distinguished too.
    assert DSEEngine._fingerprint(functools.partial(_build_idct_point, 1)) != base
    # Rebuilding the same partial yields the same signature (resume works).
    assert DSEEngine._fingerprint(
        functools.partial(_build_idct_point, rows=1)) == base


# -- progress + validation ---------------------------------------------------------


def test_progress_callback_sees_every_point(library):
    events = []
    DSEEngine(IDCTPointFactory(rows=1), library, sweep_points(),
              executor="serial", progress=events.append).run()
    assert [event.done for event in events] == [1, 2, 3]
    assert all(event.total == 3 for event in events)
    assert {event.point.name for event in events} == {"P0", "P1", "P2"}
    assert all(event.status == "ok" for event in events)


def test_progress_callback_exceptions_do_not_abort_the_sweep(library):
    """Regression: a raising progress observer used to propagate out of the
    engine loop and kill the sweep.  Observer failures must be isolated."""
    events = []

    def flaky_observer(event):
        events.append(event.point.name)
        if event.point.name == "P1":
            raise RuntimeError("observer fell over")

    with pytest.warns(RuntimeWarning, match="observer fell over"):
        result = DSEEngine(IDCTPointFactory(rows=1), library, sweep_points(),
                           executor="serial", progress=flaky_observer).run()
    # Every point was still evaluated and reported to the observer.
    assert [o.status for o in result.outcomes] == ["ok"] * 3
    assert events == ["P0", "P1", "P2"]
    assert result.progress_errors == 1
    assert "RuntimeError: observer fell over" == result.progress_last_error


def test_progress_callback_warns_once_for_repeated_failures(library):
    def always_raises(event):
        raise ValueError("every time")

    with pytest.warns(RuntimeWarning) as warned:
        result = DSEEngine(IDCTPointFactory(rows=1), library, sweep_points(),
                           executor="serial", progress=always_raises).run()
    runtime = [w for w in warned if issubclass(w.category, RuntimeWarning)]
    assert len(runtime) == 1  # one warning, not one per point
    assert result.progress_errors == 3
    assert result.progress_last_error == "ValueError: every time"
    assert len(result.entries) == 3


def test_healthy_progress_reports_zero_errors(library):
    result = DSEEngine(IDCTPointFactory(rows=1), library, sweep_points(),
                       executor="serial", progress=lambda event: None).run()
    assert result.progress_errors == 0
    assert result.progress_last_error is None


def test_process_workers_ship_spans_back_to_the_parent_tracer(library):
    from repro.obs.trace import tracing

    points = sweep_points()[:2]
    with tracing() as tracer:
        result = DSEEngine(IDCTPointFactory(rows=1), library, points,
                           executor="process", max_workers=2).run()
    assert not result.errors
    adopted = [root for root in tracer.roots
               if root.track.startswith("worker:")]
    assert {root.track for root in adopted} == {"worker:P0", "worker:P1"}
    # Worker trees carry the full per-point phase structure.
    names = {span.name for root in adopted for span in root.walk()}
    assert "flow.schedule" in names
    # Tracing observes; it must not perturb the sweep result.
    untraced = DSEEngine(IDCTPointFactory(rows=1), library, points,
                         executor="process", max_workers=2).run()
    assert result.metrics() == untraced.metrics()


def test_duplicate_point_names_are_rejected(library):
    points = [DesignPoint(name="P", latency=8), DesignPoint(name="P", latency=12)]
    with pytest.raises(ReproError, match="unique"):
        DSEEngine(IDCTPointFactory(rows=1), library, points)


def test_unknown_executor_is_rejected(library):
    with pytest.raises(ReproError, match="executor"):
        DSEEngine(IDCTPointFactory(rows=1), library, sweep_points(),
                  executor="fleet")


# -- scenario sweeps ---------------------------------------------------------------


def test_scenario_sweep_is_diverse_and_picklable():
    scenarios = scenario_sweep()
    names = [scenario.name for scenario in scenarios]
    assert len(names) == len(set(names))
    # Kernels and random designs at several sizes are both represented.
    assert sum(1 for s in scenarios if isinstance(s.factory, KernelPointFactory)) >= 5
    randoms = [s.factory for s in scenarios
               if isinstance(s.factory, RandomPointFactory)]
    assert len({(f.layers, f.ops_per_layer) for f in randoms}) >= 3
    for scenario in scenarios:
        assert len(scenario.points) >= 2
        pickle.dumps(scenario.factory)  # process-pool ready


def test_scenario_runs_through_the_engine(library):
    scenario = scenario_sweep()[0]
    result = scenario.run(library, executor="serial")
    result.raise_on_errors()
    assert len(result.entries) == len(scenario.points)
    assert all(entry.conventional.meets_timing and entry.slack_based.meets_timing
               for entry in result.entries)


# -- DSEResult range semantics ------------------------------------------------------


def fake_entry(area: float, power: float, throughput: float) -> DSEEntry:
    flow = SimpleNamespace(total_area=area, total_power=power,
                           throughput=throughput)
    return DSEEntry(point=DesignPoint(name=f"F{id(flow)}", latency=8),
                    conventional=flow, slack_based=flow)


def test_ranges_of_an_empty_sweep_raise():
    empty = DSEResult()
    for method in (empty.area_range, empty.power_range, empty.throughput_range,
                   empty.average_saving_percent):
        with pytest.raises(ReproError, match="empty sweep"):
            method()


def test_ranges_with_zero_valued_entries_raise_distinctly():
    broken = DSEResult(entries=[fake_entry(100.0, 1.0, 2.0),
                                fake_entry(0.0, 0.0, 0.0)])
    for method in (broken.area_range, broken.power_range,
                   broken.throughput_range):
        with pytest.raises(ReproError, match="non-positive"):
            method()


def test_ranges_of_a_healthy_sweep_are_ratios():
    healthy = DSEResult(entries=[fake_entry(100.0, 2.0, 5.0),
                                 fake_entry(50.0, 1.0, 10.0)])
    assert healthy.area_range() == pytest.approx(2.0)
    assert healthy.power_range() == pytest.approx(2.0)
    assert healthy.throughput_range() == pytest.approx(2.0)


# -- cache-off evaluation hook (the pipeline-cache oracle's substrate) --------------


def test_engine_cache_off_mode_matches_cached_metrics(library):
    """`use_analysis_cache=False` must be observably identical to the
    default: private artifact bundles are bit-for-bit equal to shared ones
    by the analysis-cache contract."""
    import json

    factory = IDCTPointFactory(rows=1)
    points = [DesignPoint(name="P0", latency=10, clock_period=1500.0),
              DesignPoint(name="P1", latency=12, clock_period=1500.0)]
    cached = DSEEngine(factory, library, points, executor="serial").run()
    fresh = DSEEngine(factory, library, points, executor="serial",
                      use_analysis_cache=False).run()
    assert json.dumps(cached.metrics(), sort_keys=True) \
        == json.dumps(fresh.metrics(), sort_keys=True)


def test_evaluate_point_use_cache_false_builds_private_artifacts(library,
                                                                 monkeypatch):
    import repro.flows.dse as dse_mod
    from repro.flows.pipeline import PointArtifacts

    calls = {"build": 0, "of": 0}
    real_build, real_of = PointArtifacts.build, PointArtifacts.of
    monkeypatch.setattr(
        PointArtifacts, "build",
        classmethod(lambda cls, design: calls.__setitem__(
            "build", calls["build"] + 1) or real_build.__func__(cls, design)))
    monkeypatch.setattr(
        PointArtifacts, "of",
        classmethod(lambda cls, design, cache=None: calls.__setitem__(
            "of", calls["of"] + 1) or real_of.__func__(cls, design, cache)))

    point = DesignPoint(name="P0", latency=10, clock_period=1500.0)
    dse_mod.evaluate_point(IDCTPointFactory(rows=1), library, point,
                           use_cache=False)
    assert calls["build"] >= 1 and calls["of"] == 0
