"""Tests of the shared JSONL dialect: locking, durability, compaction.

The multiprocess hammer is the regression test for the append race the
serve layer's worker pool exposed: several writers appending to one store
without coordination could interleave partial lines, which the tolerant
loader then *silently skipped* — lost results masquerading as a clean
store.  The locked flush-then-fsync append path must keep
``skipped_lines`` at exactly zero under concurrent load.
"""

import json
import multiprocessing
import os

import pytest

from repro.core.jsonl import (
    append_record,
    append_records,
    dump_record,
    load_records,
    lock_path,
    locked,
    rewrite_records,
)


def accept_all(record):
    return True


# -- basic dialect -----------------------------------------------------------------


class TestAppendAndLoad:
    def test_append_creates_parents_and_round_trips(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "store.jsonl")
        append_record(path, {"b": 2, "a": 1})
        records, skipped = load_records(path, accept_all)
        assert records == [{"a": 1, "b": 2}]
        assert skipped == 0

    def test_lines_are_canonical_sorted_keys(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        append_record(path, {"z": 1, "a": {"y": 2, "b": 3}})
        with open(path, "r", encoding="utf-8") as handle:
            line = handle.read().rstrip("\n")
        assert line == dump_record({"z": 1, "a": {"y": 2, "b": 3}})
        assert line == '{"a": {"b": 3, "y": 2}, "z": 1}'

    def test_batch_append_counts_and_orders(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        assert append_records(path, [{"i": i} for i in range(5)]) == 5
        assert append_records(path, []) == 0
        records, _ = load_records(path, accept_all)
        assert [r["i"] for r in records] == list(range(5))

    def test_sidecar_lock_file_is_created(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        append_record(path, {"a": 1})
        assert os.path.exists(lock_path(path))
        assert lock_path(path) == path + ".lock"

    def test_locked_is_reentrant_across_processes_not_threads(self, tmp_path):
        # Single-process sanity: the context manager acquires and releases.
        path = str(tmp_path / "store.jsonl")
        with locked(path):
            append_records_allowed = True
        assert append_records_allowed
        # A second acquisition after release succeeds.
        with locked(path):
            pass


class TestRewrite:
    def test_rewrite_replaces_contents_atomically(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        append_records(path, [{"i": i} for i in range(10)])
        count = rewrite_records(path, [{"i": 1}, {"i": 2}])
        assert count == 2
        records, skipped = load_records(path, accept_all)
        assert [r["i"] for r in records] == [1, 2]
        assert skipped == 0
        leftovers = [name for name in os.listdir(tmp_path)
                     if name.endswith(".tmp")]
        assert leftovers == []

    def test_rewrite_twice_is_byte_identical(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        records = [{"i": i, "payload": "x" * i} for i in range(20)]
        rewrite_records(path, records)
        first = open(path, "rb").read()
        rewrite_records(path, records)
        assert open(path, "rb").read() == first

    def test_rewrite_failure_cleans_up_and_preserves_store(self, tmp_path):
        path = str(tmp_path / "store.jsonl")
        append_record(path, {"keep": True})

        def poisoned():
            yield {"i": 0}
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            rewrite_records(path, poisoned())
        records, _ = load_records(path, accept_all)
        assert records == [{"keep": True}]
        assert [n for n in os.listdir(tmp_path) if n.endswith(".tmp")] == []


# -- the multiprocess hammer -------------------------------------------------------


def _hammer_worker(path, worker, count, barrier):
    # A fat payload makes torn writes overwhelmingly likely without the
    # lock: each line is several kiB, far beyond any atomic-write size a
    # buffered "a"-mode stream would otherwise give for free.
    barrier.wait()
    for index in range(count):
        append_record(path, {"worker": worker, "index": index,
                             "pad": "x" * 4096})


class TestMultiprocessHammer:
    def test_concurrent_appends_never_tear_lines(self, tmp_path):
        path = str(tmp_path / "hammer.jsonl")
        workers, per_worker = 4, 25
        barrier = multiprocessing.Barrier(workers)
        processes = [
            multiprocessing.Process(target=_hammer_worker,
                                    args=(path, worker, per_worker, barrier))
            for worker in range(workers)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(60)
            assert process.exitcode == 0

        records, skipped = load_records(path, accept_all)
        # The regression: a torn line parses as garbage and is *silently
        # skipped* — so the assertion that matters is skipped == 0, not
        # just the total count.
        assert skipped == 0
        assert len(records) == workers * per_worker
        seen = {(r["worker"], r["index"]) for r in records}
        assert len(seen) == workers * per_worker

    def test_store_level_skipped_lines_stays_zero(self, tmp_path):
        from repro.explore.store import ResultStore, StoreKey

        path = str(tmp_path / "hammer.jsonl")
        workers, per_worker = 3, 10
        barrier = multiprocessing.Barrier(workers)
        processes = [
            multiprocessing.Process(target=_store_hammer_worker,
                                    args=(path, worker, per_worker, barrier))
            for worker in range(workers)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(60)
            assert process.exitcode == 0

        store = ResultStore(path)
        assert store.skipped_lines == 0
        assert len(store) == workers * per_worker
        key = StoreKey(fingerprint="w0-0", clock_period=1500.0,
                       pipeline_ii=None, margin_fraction=0.05)
        assert store.get_metrics(key)["saving_percent"] == 10.0


def _store_hammer_worker(path, worker, count, barrier):
    from repro.explore.store import ResultStore, StoreKey

    barrier.wait()
    store = ResultStore(path)
    for index in range(count):
        key = StoreKey(fingerprint=f"w{worker}-{index}", clock_period=1500.0,
                       pipeline_ii=None, margin_fraction=0.05)
        store.put(key, {"saving_percent": 10.0, "pad": "y" * 2048},
                  workload=f"w{worker}")
