"""Unit tests for the Library and technology parameters."""

import pytest

from repro.errors import LibraryError
from repro.ir.operations import Operation, OpKind
from repro.lib import Library, TechnologyParameters, tsmc90_library


def test_width_rounding_up(library):
    cls = library.class_for(OpKind.ADD, 12)
    assert cls.width == 16
    cls = library.class_for(OpKind.ADD, 17)
    assert cls.width == 24


def test_width_beyond_characterisation_uses_widest(library):
    cls = library.class_for(OpKind.ADD, 500)
    assert cls.width == 64


def test_unknown_kind_rejected():
    empty = Library("empty")
    with pytest.raises(LibraryError):
        empty.class_for(OpKind.ADD, 8)


def test_operation_delay_for_all_categories(library):
    add = Operation(name="a", kind=OpKind.ADD, width=16)
    const = Operation(name="c", kind=OpKind.CONST, width=16, value=1)
    read = Operation(name="r", kind=OpKind.READ, width=16, operand_widths=())
    assert library.operation_delay(add) == library.fastest_variant(add).delay
    assert library.operation_delay(const) == 0.0
    assert library.operation_delay(read) == library.technology.io_delay


def test_delay_range_and_selection(library):
    add = Operation(name="a", kind=OpKind.ADD, width=16)
    low, high = library.delay_range_for_op(add)
    assert low == 220.0 and high == 1220.0
    assert library.select_variant(add, 500.0).delay == 400.0
    assert library.select_variant(add, 10000.0).delay == 1220.0


def test_class_for_op_rejects_free_ops(library):
    const = Operation(name="c", kind=OpKind.CONST, width=16, value=1)
    with pytest.raises(LibraryError):
        library.class_for_op(const)


def test_duplicate_class_requires_replace(library):
    mul_class = library.class_for(OpKind.MUL, 8)
    with pytest.raises(LibraryError):
        library.add_class(mul_class)
    library.add_class(mul_class, replace=True)  # no error


def test_library_contents_queries(library):
    assert library.has_kind(OpKind.MUL)
    assert 8 in library.widths_for_kind(OpKind.MUL)
    assert (OpKind.MUL, 8) in library
    assert "mul" in library.describe()


def test_technology_mux_model():
    tech = TechnologyParameters(mux2_area_per_bit=2.0, mux_delay_per_stage=50.0)
    assert tech.mux_area(1, 16) == 0.0
    assert tech.mux_area(2, 16) == pytest.approx(32.0)
    assert tech.mux_area(4, 16) == pytest.approx(96.0)
    assert tech.mux_delay(1) == 0.0
    assert tech.mux_delay(2) == 50.0
    assert tech.mux_delay(5) == 150.0


def test_default_technology_has_zero_timing_overheads(library):
    tech = library.technology
    assert tech.mux_delay_per_stage == 0.0
    assert tech.register_setup == 0.0
    assert tech.io_delay == 0.0
    assert tech.register_area_per_bit > 0
