"""The fan-in merge: order-invariance, byte-stability, idempotence.

The property the CI fleet rests on: merging shard artifacts in *any*
permutation yields byte-identical output with identical dedup counts, and
re-merging a merged file is a no-op.  Shard files are synthesized directly
in the stores' JSONL dialects (no flow runs), so the whole suite is fast.
"""

import itertools
import json
import os

import pytest

from repro.campaign.merge import (
    CORPUS_FILE,
    METRICS_FILE,
    REPORT_FILE,
    STORE_FILE,
    merge_corpora,
    merge_shards,
    merge_stores,
)
from repro.core.jsonl import dump_record
from repro.errors import ReproError


def corpus_record(oracle="area-recovery", fingerprint="f0", seed=1,
                  clock=1500.0, details="boom", kind="failure"):
    return {
        "schema": 1, "kind": kind, "oracle": oracle,
        "fingerprint": fingerprint, "seed": seed, "ops": 3,
        "details": details, "shrunk_from": None,
        "spec": {"seed": seed, "clock_period": clock, "pipeline_ii": None,
                 "margin_fraction": 0.05},
    }


def store_record(fingerprint="s0", clock=1500.0, latency=8, area=100.0):
    return {
        "schema": 1, "workload": "idct",
        "key": {"fingerprint": fingerprint, "clock_period": clock,
                "pipeline_ii": None, "margin_fraction": 0.05},
        "point": {"name": f"L{latency}", "latency": latency,
                  "pipeline_ii": None, "clock_period": clock},
        "metrics": {"latency_steps": latency, "area": area},
    }


def write_jsonl(path, records, trailing=""):
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(dump_record(record) + "\n")
        if trailing:
            handle.write(trailing)


@pytest.fixture()
def shard_dirs(tmp_path):
    """Four shard dirs with overlap, a conflict and a corrupt line."""
    specs = [
        # shard 0: two corpus records, one store record
        ([corpus_record(fingerprint="a"), corpus_record(fingerprint="b")],
         [store_record(fingerprint="x")]),
        # shard 1: repeats corpus "a" byte-identically; new store record
        ([corpus_record(fingerprint="a")],
         [store_record(fingerprint="y", latency=9)]),
        # shard 2: conflicting payload for corpus "b" (same key, new details)
        ([corpus_record(fingerprint="b", details="different message")],
         [store_record(fingerprint="x")]),
        # shard 3: corrupt trailing line in the store (crashed writer)
        ([corpus_record(fingerprint="c", oracle="pareto-front")],
         [store_record(fingerprint="z", latency=10)]),
    ]
    dirs = []
    for index, (corpus, store) in enumerate(specs):
        directory = tmp_path / f"shard-{index}"
        directory.mkdir()
        write_jsonl(str(directory / CORPUS_FILE), corpus)
        write_jsonl(str(directory / STORE_FILE), store,
                    trailing="{truncated" if index == 3 else "")
        (directory / METRICS_FILE).write_text(
            json.dumps({"schema": 1, "campaign": "unit", "seed": 11,
                        "metrics": {"counters": {"oracle.pass": 2 + index}}}),
            encoding="utf-8")
        dirs.append(str(directory))
    return dirs


def read_bytes(path):
    with open(path, "rb") as handle:
        return handle.read()


def test_merge_every_permutation_is_byte_identical(shard_dirs, tmp_path):
    reference_bytes = None
    reference_report = None
    for permutation in itertools.permutations(shard_dirs):
        out = tmp_path / ("out-" + "-".join(os.path.basename(p)[-1]
                                            for p in permutation))
        report = merge_shards(list(permutation), str(out))
        blob = (read_bytes(str(out / CORPUS_FILE)),
                read_bytes(str(out / STORE_FILE)))
        # Strip the only order-dependent field (output path) before compare.
        for section in ("corpus", "store"):
            report[section].pop("out_path")
        if reference_bytes is None:
            reference_bytes, reference_report = blob, report
            continue
        assert blob == reference_bytes
        assert report == reference_report


def test_merge_counts_duplicates_conflicts_and_skips(shard_dirs, tmp_path):
    out = tmp_path / "merged"
    report = merge_shards(shard_dirs, str(out))
    corpus, store = report["corpus"], report["store"]
    # corpus: a, a(dup), b, b(conflict), c -> 3 unique
    assert corpus["records_in"] == 5
    assert corpus["unique"] == 3
    assert corpus["exact_duplicates"] == 1
    assert corpus["conflicts"] == 1
    assert corpus["skipped_lines"] == 0
    # store: x, x(dup), y, z -> 3 unique, plus one corrupt line
    assert store["records_in"] == 4
    assert store["unique"] == 3
    assert store["exact_duplicates"] == 1
    assert store["conflicts"] == 0
    assert store["skipped_lines"] == 1
    assert store["clean"] is False and corpus["clean"] is False
    assert report["clean"] is False
    # The corrupt line is attributed to its input file.
    skips = {entry["path"]: entry["skipped_lines"]
             for entry in store["inputs"]}
    assert sum(skips.values()) == 1
    # Shard manifests ride along, sorted by directory.
    assert [m["metrics"]["counters"]["oracle.pass"]
            for m in report["shards"]] == [2, 3, 4, 5]
    assert os.path.exists(str(out / REPORT_FILE))


def test_remerge_of_a_merge_is_idempotent(shard_dirs, tmp_path):
    first = tmp_path / "first"
    merge_shards(shard_dirs, str(first))
    again_corpus = merge_corpora([str(first / CORPUS_FILE)] * 2, None)
    again_store = merge_stores([str(first / STORE_FILE)] * 2, None)
    # Dry-run sha256 of the re-merge equals the written file's content hash.
    import hashlib
    assert again_corpus.sha256 == hashlib.sha256(
        read_bytes(str(first / CORPUS_FILE))).hexdigest()
    assert again_store.sha256 == hashlib.sha256(
        read_bytes(str(first / STORE_FILE))).hexdigest()
    # Nothing new, no conflicts: the merged file is a fixed point.
    assert again_corpus.conflicts == 0
    assert again_store.conflicts == 0


def test_dry_run_writes_nothing(shard_dirs, tmp_path):
    before = set(os.listdir(tmp_path))
    report = merge_shards(shard_dirs, None)
    assert set(os.listdir(tmp_path)) == before
    assert report["corpus"]["unique"] == 3


def test_merge_requires_existing_directories(tmp_path):
    with pytest.raises(ReproError):
        merge_shards([], str(tmp_path / "out"))
    with pytest.raises(ReproError):
        merge_shards([str(tmp_path / "missing")], str(tmp_path / "out"))


def test_missing_shard_files_merge_as_empty(tmp_path):
    empty = tmp_path / "empty-shard"
    empty.mkdir()
    report = merge_shards([str(empty)], str(tmp_path / "out"))
    assert report["corpus"]["records_in"] == 0
    assert report["store"]["records_in"] == 0
    assert report["clean"] is True


def test_skipped_lines_surface_in_cache_stats(tmp_path):
    from repro.obs.metrics import cache_stats

    path = tmp_path / "corrupt.jsonl"
    write_jsonl(str(path), [store_record()], trailing="%%% not json\n")
    before = cache_stats()["jsonl_stores"]["skipped_lines"]
    merge_stores([str(path)], None)
    after = cache_stats()["jsonl_stores"]["skipped_lines"]
    assert after == before + 1
