"""Unit tests for the DOT exporters."""

from repro.ir.dot import cfg_to_dot, dfg_to_dot


def test_cfg_dot_contains_nodes_edges_and_backedge_style(resizer_full):
    text = cfg_to_dot(resizer_full.cfg)
    assert text.startswith("digraph")
    assert '"s0"' in text and '"s1"' in text and '"s2"' in text
    assert "style=dashed" in text            # the loop back edge
    assert 'label="e1"' in text


def test_dfg_dot_lists_all_operations(resizer_full):
    text = dfg_to_dot(resizer_full.dfg)
    for name in ("rd_a", "add", "div", "mul", "mux", "wr"):
        assert f'"{name}"' in text


def test_dfg_dot_clusters_by_schedule(resizer_main):
    schedule = {op.name: op.birth_edge for op in resizer_main.dfg.operations}
    text = dfg_to_dot(resizer_main.dfg, schedule=schedule)
    assert "subgraph cluster_0" in text
    assert "style=dotted" in text


def test_cfg_dot_dashes_every_back_edge_of_a_nested_loop():
    from repro.ir.cfg import CFG, NodeKind

    cfg = CFG("nested")
    cfg.add_node("start", NodeKind.START)
    for name in ("h1", "h2", "s1", "s2"):
        cfg.add_node(name, NodeKind.STATE)
    cfg.add_edge("e1", "start", "h1")
    cfg.add_edge("e2", "h1", "h2")
    cfg.add_edge("e3", "h2", "s1")
    cfg.add_edge("inner_back", "s1", "h2")
    cfg.add_edge("e4", "s1", "s2")
    cfg.add_edge("outer_back", "s2", "h1")
    text = cfg_to_dot(cfg)
    assert '"s1" -> "h2" [label="inner_back", style=dashed];' in text
    assert '"s2" -> "h1" [label="outer_back", style=dashed];' in text
    assert '"h1" -> "h2" [label="e2", style=solid];' in text


def test_dfg_dot_labels_carried_edges_with_their_distance():
    from repro.ir import LinearDesignBuilder, OpKind

    builder = LinearDesignBuilder("carried", 2)
    a = builder.read("a", "e1", width=8)
    acc = builder.binary(OpKind.ADD, a.name, a.name, "e1", width=8, name="acc")
    builder.loop_carry(acc.name, acc.name, dst_port=1, distance=2)
    builder.write("out", "e2", acc.name, width=8)
    text = dfg_to_dot(builder.dfg)
    assert '"acc" -> "acc" [style=dashed, label="d=2"];' in text
    assert 'style=solid' in text
