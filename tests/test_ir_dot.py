"""Unit tests for the DOT exporters."""

from repro.ir.dot import cfg_to_dot, dfg_to_dot


def test_cfg_dot_contains_nodes_edges_and_backedge_style(resizer_full):
    text = cfg_to_dot(resizer_full.cfg)
    assert text.startswith("digraph")
    assert '"s0"' in text and '"s1"' in text and '"s2"' in text
    assert "style=dashed" in text            # the loop back edge
    assert 'label="e1"' in text


def test_dfg_dot_lists_all_operations(resizer_full):
    text = dfg_to_dot(resizer_full.dfg)
    for name in ("rd_a", "add", "div", "mul", "mux", "wr"):
        assert f'"{name}"' in text


def test_dfg_dot_clusters_by_schedule(resizer_main):
    schedule = {op.name: op.birth_edge for op in resizer_main.dfg.operations}
    text = dfg_to_dot(resizer_main.dfg, schedule=schedule)
    assert "subgraph cluster_0" in text
    assert "style=dotted" in text
