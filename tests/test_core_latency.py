"""Tests for CFG edge latency, reachability and dominance (paper Section V)."""

import pytest

from repro.core.latency import LatencyAnalysis
from repro.errors import TimingError


@pytest.fixture(scope="module")
def analysis(resizer_full):
    return LatencyAnalysis(resizer_full.cfg)


def test_paper_latency_examples(analysis):
    """The three examples given below Definition 1 of Section V."""
    assert analysis.latency("e4", "e6") == 0
    assert analysis.latency("e1", "e7") == 2
    assert analysis.latency("e3", "e4") is None


def test_latency_of_edge_with_itself_is_zero(analysis):
    for edge in ("e1", "e4", "e7"):
        assert analysis.latency(edge, edge) == 0


def test_latency_counts_states_on_the_path(analysis):
    assert analysis.latency("e1", "e4") == 1   # crosses s0
    assert analysis.latency("e1", "e5") == 1   # crosses s1
    assert analysis.latency("e1", "e6") == 1   # min over the two branches
    assert analysis.latency("e2", "e4") == 1   # s0 is the tail of e4
    assert analysis.latency("e6", "e7") == 1   # s2 between them
    assert analysis.latency("e4", "e7") == 1


def test_latency_undefined_for_unreachable_pairs(analysis):
    assert analysis.latency("e7", "e1") is None
    assert analysis.latency("e5", "e2") is None


def test_reachability_and_strict_reachability(analysis):
    assert analysis.reachable("e1", "e7")
    assert analysis.reachable("e4", "e4")
    assert not analysis.strictly_reachable("e4", "e4")
    assert analysis.strictly_reachable("e1", "e6")
    assert not analysis.reachable("e2", "e5")


def test_edge_dominance(analysis):
    assert analysis.dominates("e1", "e4")
    assert analysis.dominates("e2", "e4")
    assert analysis.dominates("e1", "e6")
    assert not analysis.dominates("e2", "e6")   # the else path avoids e2
    assert analysis.dominates("e6", "e6")


def test_edge_postdominance(analysis):
    assert analysis.postdominates("e6", "e2")
    assert analysis.postdominates("e7", "e1")
    assert not analysis.postdominates("e4", "e1")  # the else path avoids e4


def test_control_compatibility(analysis):
    # Hoisting above the branch is allowed (speculation).
    assert analysis.control_compatible("e1", "e4")
    # Sinking below the join is allowed.
    assert analysis.control_compatible("e6", "e4")
    # Moving sideways into the other branch is not.
    assert not analysis.control_compatible("e5", "e4")
    assert not analysis.control_compatible("e3", "e2")


def test_edge_order_and_extremes(analysis):
    names = analysis.forward_edge_names
    assert names[0] == "e1"
    assert analysis.first_edge() == "e1"
    assert analysis.last_edge() == "e7"
    assert analysis.edge_order("e1") < analysis.edge_order("e6")
    with pytest.raises(TimingError):
        analysis.edge_order("e8")  # backward edge is not a forward edge


def test_linear_cfg_latencies(interpolation):
    analysis = LatencyAnalysis(interpolation.cfg)
    assert analysis.latency("e1", "e2") == 1
    assert analysis.latency("e1", "e3") == 2
    assert analysis.latency("e2", "e3") == 1
    assert analysis.latency("e3", "e1") is None
