"""Tests of phase aggregation and the profile report (repro.obs.profile)."""

import json

import pytest

from repro.obs.profile import (
    PHASE_OF,
    aggregate_spans,
    format_profile_markdown,
    phase_totals,
    profile_report,
)
from repro.obs.trace import Span


def forest():
    """Two hand-built point trees with known durations (seconds)."""
    def tree(offset):
        root = Span("sweep.point", start=offset, end=offset + 1.0)
        schedule = Span("flow.schedule", start=offset + 0.0,
                        end=offset + 0.6)
        bind = Span("flow.bind", start=offset + 0.6, end=offset + 0.8)
        timing = Span("flow.timing", start=offset + 0.8, end=offset + 0.9)
        seed = Span("delta.seed_kernels", start=offset + 0.1,
                    end=offset + 0.3)
        schedule.children.append(seed)
        root.children.extend([schedule, bind, timing])
        return root

    return [tree(0.0), tree(2.0)]


def test_aggregate_counts_totals_and_self_times():
    stats = aggregate_spans(forest())
    assert stats["sweep.point"].count == 2
    assert stats["flow.schedule"].total_seconds == pytest.approx(1.2)
    # Schedule self time excludes the nested seed kernels.
    assert stats["flow.schedule"].self_seconds == pytest.approx(0.8)
    assert stats["delta.seed_kernels"].self_seconds == pytest.approx(0.4)


def test_phase_totals_partition_the_root_durations_exactly():
    totals = phase_totals(aggregate_spans(forest()))
    assert totals["schedule"] == pytest.approx(0.8)
    assert totals["delta-eval"] == pytest.approx(0.4)
    assert totals["bind"] == pytest.approx(0.4)
    assert totals["timing"] == pytest.approx(0.2)
    # The envelope (sweep.point minus its children) lands in "other".
    assert totals["other"] == pytest.approx(0.2)
    assert sum(totals.values()) == pytest.approx(2.0)  # = summed root durations
    # Sorted by descending self time.
    values = list(totals.values())
    assert values == sorted(values, reverse=True)


def test_unknown_span_names_report_under_other():
    assert PHASE_OF.get("no.such.span") is None
    stats = aggregate_spans([Span("no.such.span", start=0.0, end=1.0)])
    assert phase_totals(stats) == {"other": pytest.approx(1.0)}


def test_profile_report_fields_and_coverage():
    caches = {"analysis_cache": {}, "delta_seeds": {}, "characterization": {}}
    report = profile_report(forest(), wall_seconds=2.1, top=3,
                            cache_summary=caches)
    assert report["traced_seconds"] == pytest.approx(2.0)
    assert report["wall_seconds"] == 2.1
    assert report["coverage"] == pytest.approx(2.0 / 2.1)
    assert report["root_spans"] == 2
    assert report["span_count"] == 10
    assert len(report["top_spans"]) == 3
    # Top spans are ordered by self time, descending.
    selfs = [s["self_seconds"] for s in report["top_spans"]]
    assert selfs == sorted(selfs, reverse=True)
    json.dumps(report)  # JSON-safe by construction
    # The 5 % acceptance bar is checkable from the artifact itself.
    assert abs(sum(report["phases"].values()) - report["traced_seconds"]) \
        <= 0.05 * report["wall_seconds"]


def test_profile_report_defaults_wall_to_traced():
    report = profile_report(forest(), cache_summary={})
    assert report["wall_seconds"] == report["traced_seconds"]
    assert report["coverage"] == 1.0


def test_markdown_report_renders_phases_spans_and_caches():
    caches = {
        "analysis_cache": {
            "artifacts": {"hits": 3, "misses": 1},
            "spans": {"hits": 0, "misses": 0},
            "sequential_slack": {"hits": 1, "misses": 3},
        },
        "delta_seeds": {"hits": 8, "misses": 2, "inserts": 2},
        "characterization": {"hits": 10, "misses": 30, "size": 30},
    }
    report = profile_report(forest(), wall_seconds=2.0, cache_summary=caches)
    text = format_profile_markdown(report, title="Test profile")
    assert text.startswith("# Test profile")
    assert "schedule" in text and "delta-eval" in text
    assert "flow.schedule" in text
    assert "delta_seeds" in text and "80.0 %" in text  # 8/(8+2)
    assert "analysis_cache.artifacts" in text and "75.0 %" in text
    assert "n/a" in text  # zero-lookup table renders n/a, not a ZeroDivision
    assert "100.0 % coverage" in text


def test_live_cache_summary_is_pulled_when_omitted():
    report = profile_report(forest())
    assert set(report["caches"]) \
        == {"analysis_cache", "delta_seeds", "characterization",
            "jsonl_stores", "serve"}
