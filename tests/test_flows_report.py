"""Tests for the report formatters (previously untested).

Regression focus: the formatters used to crash on empty row sets
(``table4_rows`` raised through ``average_saving_percent``) and leaked
``nan``/``inf`` strings into tables when a failed design point produced
non-finite metrics.  Both are now guarded.
"""

import math
from types import SimpleNamespace

import pytest

from repro.errors import ReproError
from repro.flows.dse import DSEResult
from repro.flows.report import (
    fmt_metric,
    format_markdown_table,
    format_table,
    table4_rows,
    table5_rows,
)


def fake_entry(name="D1", latency=8, pipeline_ii=None,
               area_conventional=100.0, area_slack=90.0, saving=10.0):
    return SimpleNamespace(
        point=SimpleNamespace(name=name, latency=latency,
                              pipeline_ii=pipeline_ii),
        area_conventional=area_conventional,
        area_slack=area_slack,
        saving_percent=saving,
    )


class TestFmtMetric:
    def test_finite_value_uses_spec(self):
        assert fmt_metric(1234.567, ".1f") == "1234.6"
        assert fmt_metric(7, ".0f") == "7"

    @pytest.mark.parametrize("value", [float("nan"), float("inf"),
                                       float("-inf")])
    def test_non_finite_renders_placeholder(self, value):
        assert fmt_metric(value) == "n/a"

    @pytest.mark.parametrize("value", [None, "not-a-number", object()])
    def test_non_numeric_renders_placeholder(self, value):
        assert fmt_metric(value) == "n/a"

    def test_numeric_strings_are_accepted(self):
        assert fmt_metric("3.25", ".2f") == "3.25"


class TestFormatTable:
    def test_empty_rows_render_header_and_separator_only(self):
        text = format_table(["a", "bb"], [])
        lines = text.splitlines()
        assert lines == ["a  bb", "-  --"]

    def test_fully_empty_table_does_not_crash(self):
        assert format_table([], []) == "\n"
        assert format_table([], [], title="t").startswith("t")

    def test_ragged_rows_are_padded_and_widened(self):
        text = format_table(["a", "b"], [["1"], ["1", "2", "3"]])
        lines = text.splitlines()
        # All lines align to three columns; no IndexError, no overflow.
        assert len(lines) == 4
        assert lines[2].startswith("1")
        assert "3" in lines[3]

    def test_title_is_first_line(self):
        assert format_table(["x"], [["1"]], title="T").splitlines()[0] == "T"


class TestFormatMarkdownTable:
    def test_shape(self):
        text = format_markdown_table(["a", "b"], [["1", "2"]])
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("| a")
        assert set(lines[1]) <= {"|", " ", "-"}
        assert lines[2].startswith("| 1")

    def test_empty_inputs(self):
        assert format_markdown_table([], []) == ""
        assert format_markdown_table(["a"], []).count("\n") == 1


class TestTable4Rows:
    def test_empty_sweep_renders_without_average_row(self):
        header, rows = table4_rows(DSEResult())
        assert header[0] == "Des"
        assert rows == []
        # And the renderer accepts it.
        assert "Des" in format_table(header, rows)

    def test_non_finite_areas_render_as_placeholder(self):
        result = DSEResult()
        result.entries = [
            fake_entry(area_conventional=float("nan"),
                       area_slack=float("inf"),
                       saving=float("nan")),
            fake_entry(name="D2", area_conventional=200.0, area_slack=150.0,
                       saving=25.0),
        ]
        _, rows = table4_rows(result)
        assert rows[0][3:] == ["n/a", "n/a", "n/a"]
        assert rows[1][3:] == ["200", "150", "25.0"]
        # The average over a nan entry is nan -> placeholder, not a crash.
        assert rows[-1][0] == "Average"
        assert rows[-1][-1] == "n/a"

    def test_average_row_present_for_non_empty_sweep(self):
        result = DSEResult()
        result.entries = [fake_entry(saving=10.0), fake_entry("D2", saving=20.0)]
        _, rows = table4_rows(result)
        assert rows[-1] == ["Average", "", "", "", "", "15.0"]


class TestTable5Rows:
    def test_valid_baseline_renders_ratios(self):
        _, rows = table5_rows(2.0, 3.0, 5.0)
        assert rows == [["1.00", "1.50", "2.50"]]

    def test_zero_baseline_falls_back_to_absolute_seconds(self):
        _, rows = table5_rows(0.0, 2.0, 3.0)
        assert rows == [["0.00", "2.00", "3.00"]]

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_baseline_is_not_disguised_as_a_ratio(self, bad):
        _, rows = table5_rows(bad, 2.0, 3.0)
        assert rows == [["n/a", "2.00", "3.00"]]

    def test_negative_baseline_shows_its_absolute_value(self):
        _, rows = table5_rows(-1.0, 2.0, 3.0)
        assert rows == [["-1.00", "2.00", "3.00"]]

    def test_non_finite_measurements_render_placeholder(self):
        _, rows = table5_rows(1.0, float("nan"), float("inf"))
        assert rows == [["1.00", "n/a", "n/a"]]


def test_dse_result_range_methods_still_raise_loudly():
    """The report guards must not swallow the sweep-level invariants."""
    with pytest.raises(ReproError):
        DSEResult().average_saving_percent()
    with pytest.raises(ReproError):
        DSEResult().area_range()


def test_fmt_metric_round_trip_in_table4():
    result = DSEResult()
    result.entries = [fake_entry()]
    header, rows = table4_rows(result)
    text = format_table(header, rows, title="Table 4")
    assert "nan" not in text
    assert math.isfinite(float(rows[0][3]))
