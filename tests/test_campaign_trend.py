"""Trend history: campaign summaries, bench medians, reports."""

import json

import pytest

from repro.campaign.merge import CORPUS_FILE, METRICS_FILE, STORE_FILE, merge_shards
from repro.campaign.trend import (
    append_trend,
    bench_entry,
    campaign_summary,
    load_history,
    render_trend_markdown,
    trend_report,
    write_trend_report,
)
from repro.core.jsonl import dump_record
from repro.errors import ReproError


def corpus_record(fingerprint, oracle="area-recovery", kind="failure"):
    return {
        "schema": 1, "kind": kind, "oracle": oracle,
        "fingerprint": fingerprint, "seed": 1, "ops": 3, "details": "x",
        "shrunk_from": None,
        "spec": {"seed": 1, "clock_period": 1500.0, "pipeline_ii": None,
                 "margin_fraction": 0.05},
    }


def store_record(fingerprint, latency, area, workload="idct"):
    return {
        "schema": 1, "workload": workload,
        "key": {"fingerprint": fingerprint, "clock_period": 1500.0,
                "pipeline_ii": None, "margin_fraction": 0.05},
        "point": {"name": f"L{latency}", "latency": latency,
                  "pipeline_ii": None, "clock_period": 1500.0},
        "metrics": {
            "point": {"name": f"L{latency}", "latency": latency,
                      "pipeline_ii": None, "clock_period": 1500.0},
            "slack_based": {"latency_steps": latency, "area": area},
        },
    }


@pytest.fixture()
def merged(tmp_path):
    """One synthetic shard merged into a directory + its merge report."""
    shard = tmp_path / "shard-0"
    shard.mkdir()
    with open(shard / CORPUS_FILE, "w", encoding="utf-8") as handle:
        for record in (corpus_record("a"),
                       corpus_record("b", oracle="pareto-front",
                                     kind="shrunk")):
            handle.write(dump_record(record) + "\n")
    with open(shard / STORE_FILE, "w", encoding="utf-8") as handle:
        for record in (store_record("x", 6, 120.0),
                       store_record("y", 8, 100.0),
                       store_record("z", 10, 140.0)):
            handle.write(dump_record(record) + "\n")
    (shard / METRICS_FILE).write_text(json.dumps({
        "schema": 1, "campaign": "unit", "seed": 11,
        "metrics": {"counters": {"oracle.pass": 7, "oracle.fail": 2,
                                 "oracle.crash": 1}}}), encoding="utf-8")
    out = tmp_path / "merged"
    report = merge_shards([str(shard)], str(out))
    return report, str(out)


def test_campaign_summary_counts_everything(merged):
    report, out = merged
    entry = campaign_summary(report, out, run="r1")
    assert entry["type"] == "campaign"
    assert entry["run"] == "r1"
    assert entry["campaign"] == "unit"
    assert entry["seed"] == 11
    assert entry["shards"] == 1
    assert entry["corpus"]["records"] == 2
    assert entry["corpus"]["by_kind"] == {"failure": 1, "shrunk": 1}
    assert entry["corpus"]["by_oracle"] == {"area-recovery": 1,
                                            "pareto-front": 1}
    assert entry["store"]["records"] == 3
    idct = entry["store"]["workloads"]["idct"]
    assert idct["points"] == 3
    # (6,120) and (8,100) are non-dominated; (10,140) is dominated.
    assert idct["front_size"] == 2
    assert idct["hypervolume"] > 0
    assert entry["oracle_outcomes"] == {"pass": 7, "fail": 2, "crash": 1}
    assert entry["merge"]["clean"] is True
    assert entry["merge"]["store"]["unique"] == 3
    # JSON-safe by construction.
    json.dumps(entry)


def test_history_append_load_round_trip(merged, tmp_path):
    report, out = merged
    history = str(tmp_path / "history.jsonl")
    append_trend(history, campaign_summary(report, out, run="r1"))
    append_trend(history, campaign_summary(report, out, run="r2"))
    records, skipped = load_history(history)
    assert skipped == 0
    assert [record["run"] for record in records] == ["r1", "r2"]


def test_append_rejects_foreign_records(tmp_path):
    with pytest.raises(ReproError):
        append_trend(str(tmp_path / "h.jsonl"), {"type": "campaign"})
    with pytest.raises(ReproError):
        append_trend(str(tmp_path / "h.jsonl"), {"schema": 1, "type": "other"})


def test_bench_entry_reads_medians(tmp_path):
    timings = tmp_path / "timings.json"
    timings.write_text(json.dumps({"benchmarks": [
        {"fullname": "b/test_a.py::test_one",
         "stats": {"median": 0.25, "mean": 0.3}},
        {"name": "test_two", "stats": {"mean": 1.5}},
    ]}), encoding="utf-8")
    entry = bench_entry(str(timings), run="r9")
    assert entry["type"] == "bench"
    assert entry["medians"] == {"b/test_a.py::test_one": 0.25,
                                "test_two": 1.5}


def test_bench_entry_rejects_empty_files(tmp_path):
    timings = tmp_path / "empty.json"
    timings.write_text(json.dumps({"benchmarks": []}), encoding="utf-8")
    with pytest.raises(ReproError):
        bench_entry(str(timings))


def test_trend_report_tracks_growth_and_bench_ratios(merged, tmp_path):
    report, out = merged
    first = campaign_summary(report, out, run="r1")
    second = json.loads(json.dumps(first))
    second["run"] = "r2"
    second["corpus"]["records"] = 5
    second["store"]["records"] = 7
    bench1 = {"schema": 1, "type": "bench", "run": "r1",
              "medians": {"bench::one": 0.2}}
    bench2 = {"schema": 1, "type": "bench", "run": "r2",
              "medians": {"bench::one": 0.3}}
    result = trend_report([first, bench1, second, bench2])
    rows = result["campaigns"]
    assert [row["run"] for row in rows] == ["r1", "r2"]
    assert "corpus_growth" not in rows[0]
    assert rows[1]["corpus_growth"] == 3
    assert rows[1]["store_growth"] == 4
    assert rows[1]["hypervolumes"]["idct"] > 0
    one = result["benches"]["bench::one"]
    assert one["samples"] == 2
    assert one["first"] == 0.2 and one["latest"] == 0.3
    assert one["ratio"] == pytest.approx(1.5)
    assert one["latest_run"] == "r2"
    # last=N trims each type independently.
    trimmed = trend_report([first, bench1, second, bench2], last=1)
    assert [row["run"] for row in trimmed["campaigns"]] == ["r2"]
    assert trimmed["benches"]["bench::one"]["samples"] == 1


def test_markdown_rendering_and_report_files(merged, tmp_path):
    report, out = merged
    records = [campaign_summary(report, out, run="r1"),
               {"schema": 1, "type": "bench", "run": "r1",
                "medians": {"bench::one": 0.2}}]
    result = trend_report(records)
    markdown = render_trend_markdown(result)
    assert "# Campaign trend report" in markdown
    assert "| r1" in markdown
    assert "bench::one" in markdown
    assert "idct" in markdown
    json_path = tmp_path / "trend" / "report.json"
    md_path = tmp_path / "trend" / "report.md"
    write_trend_report(result, json_path=str(json_path),
                       markdown_path=str(md_path))
    with open(json_path, "r", encoding="utf-8") as handle:
        assert json.load(handle) == json.loads(json.dumps(result))
    assert md_path.read_text(encoding="utf-8") == markdown


def test_empty_history_renders_gracefully():
    markdown = render_trend_markdown(trend_report([]))
    assert "No campaign records yet" in markdown
