"""Property-based tests (hypothesis) on the core analyses and data structures."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.bellman_ford import compute_sequential_slack_bellman_ford
from repro.core.budgeting import budget_slack
from repro.core.opspan import OperationSpans
from repro.core.sequential_slack import compute_sequential_slack
from repro.core.timed_dfg import build_timed_dfg, is_sink_name
from repro.ir.operations import OpKind
from repro.lib import tsmc90_library
from repro.sched.allocation import minimal_allocation
from repro.sched.list_scheduler import try_list_schedule
from repro.workloads import random_layered_design

_LIBRARY = tsmc90_library()

_design_params = st.tuples(
    st.integers(min_value=0, max_value=10 ** 6),     # seed
    st.integers(min_value=1, max_value=4),           # layers
    st.integers(min_value=2, max_value=6),           # ops per layer
    st.integers(min_value=2, max_value=6),           # latency (states)
)

_SETTINGS = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


def _design(params):
    seed, layers, ops_per_layer, latency = params
    return random_layered_design(seed=seed, layers=layers,
                                 ops_per_layer=ops_per_layer, latency=latency,
                                 clock_period=2000.0)


def _fastest(design):
    return {op.name: (_LIBRARY.fastest_variant(op) if op.is_synthesizable else None)
            for op in design.dfg.operations if op.kind is not OpKind.CONST}


def _delays(design):
    return {name: _LIBRARY.operation_delay(design.dfg.op(name), variant)
            for name, variant in _fastest(design).items()}


@given(_design_params)
@_SETTINGS
def test_spans_always_contain_the_birth_reachable_interval(params):
    design = _design(params)
    spans = OperationSpans(design)
    latency = spans.latency
    for op in design.dfg.operations:
        if op.kind is OpKind.CONST:
            continue
        info = spans.span(op.name)
        assert info.early in info.edges
        assert info.late in info.edges
        assert latency.reachable(info.early, info.late)
        if op.is_fixed:
            assert info.edges == (op.birth_edge,)


@given(_design_params)
@_SETTINGS
def test_sequential_and_bellman_ford_slack_agree(params):
    design = _design(params)
    timed = build_timed_dfg(design)
    delays = _delays(design)
    fast = compute_sequential_slack(timed, delays, 2000.0)
    slow = compute_sequential_slack_bellman_ford(timed, delays, 2000.0)
    for name in fast.slack:
        assert slow.slack[name] == pytest.approx(fast.slack[name])


@given(_design_params, st.booleans(),
       st.sampled_from([900.0, 1500.0, 2000.0]))
@_SETTINGS
def test_bellman_ford_is_equivalent_to_topological_analysis(params, aligned,
                                                            clock_period):
    """The paper's Table 5 claim, as a property: the Bellman-Ford baseline
    and the linear topological propagation compute the *same* arrival,
    required and slack values on any seeded random design — aligned or not,
    single- or multi-sink (every operation gets a sink node, and layered
    designs have several terminal operations)."""
    design = _design(params)
    timed = build_timed_dfg(design)
    multi_sink = sum(1 for node in timed.operation_nodes
                     if all(is_sink_name(e.dst) for e in timed.successors(node)))
    assert multi_sink >= 1  # terminal operations exist; several for most draws
    delays = _delays(design)
    fast = compute_sequential_slack(timed, delays, clock_period,
                                    aligned=aligned)
    slow = compute_sequential_slack_bellman_ford(timed, delays, clock_period,
                                                 aligned=aligned)
    assert set(slow.slack) == set(fast.slack)
    for name in fast.slack:
        assert slow.arrival[name] == pytest.approx(fast.arrival[name], abs=1e-6)
        assert slow.required[name] == pytest.approx(fast.required[name], abs=1e-6)
        assert slow.slack[name] == pytest.approx(fast.slack[name], abs=1e-6)


@given(_design_params)
@_SETTINGS
def test_aligned_slack_is_never_larger_than_plain_slack(params):
    design = _design(params)
    timed = build_timed_dfg(design)
    delays = _delays(design)
    plain = compute_sequential_slack(timed, delays, 2000.0, aligned=False)
    aligned = compute_sequential_slack(timed, delays, 2000.0, aligned=True)
    for name in plain.slack:
        assert aligned.slack[name] <= plain.slack[name] + 1e-6


@given(_design_params)
@_SETTINGS
def test_critical_operations_share_the_worst_slack(params):
    design = _design(params)
    timed = build_timed_dfg(design)
    delays = _delays(design)
    result = compute_sequential_slack(timed, delays, 2000.0)
    worst = result.worst_slack()
    critical = result.critical_operations()
    assert critical
    for name in critical:
        assert result.slack[name] == pytest.approx(worst)


@given(_design_params)
@_SETTINGS
def test_budgeted_delays_respect_library_bounds(params):
    design = _design(params)
    result = budget_slack(design, _LIBRARY, clock_period=2000.0)
    for op in design.dfg.operations:
        if not op.is_synthesizable:
            continue
        low, high = _LIBRARY.delay_range_for_op(op)
        assert low - 1e-6 <= result.delay_of(op.name) <= high + 1e-6


@given(_design_params)
@_SETTINGS
def test_list_schedules_are_always_consistent(params):
    design = _design(params)
    variants = _fastest(design)
    allocation = minimal_allocation(design, _LIBRARY)
    attempt = try_list_schedule(design, _LIBRARY, 2000.0, variants, allocation)
    if not attempt.success:
        # Tight minimal allocations may legitimately fail; the relaxation loop
        # handles that in the flows.  A failure must still carry a diagnosis.
        assert attempt.failure is not None
        assert attempt.failure.reason in ("resource", "timing", "unreachable")
        return
    schedule = attempt.schedule
    assert schedule.is_complete()
    assert schedule.validate() == []
    spans = OperationSpans(design)
    for item in schedule.items:
        assert item.edge in spans.span(item.op).edges
