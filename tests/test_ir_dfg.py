"""Unit tests for repro.ir.dfg."""

import pytest

from repro.errors import IRError
from repro.ir.dfg import DFG
from repro.ir.operations import OpKind


def make_chain():
    dfg = DFG("chain")
    dfg.add_op("a", OpKind.READ, width=8)
    dfg.add_op("b", OpKind.ADD, width=8)
    dfg.add_op("c", OpKind.MUL, width=8)
    dfg.add_op("d", OpKind.WRITE, width=8, operand_widths=(8,))
    dfg.connect("a", "b", 0)
    dfg.connect("b", "c", 0)
    dfg.connect("c", "d", 0)
    return dfg


def test_duplicate_operation_rejected():
    dfg = DFG()
    dfg.add_op("a", OpKind.ADD)
    with pytest.raises(IRError):
        dfg.add_op("a", OpKind.SUB)


def test_connect_unknown_operation_rejected():
    dfg = DFG()
    dfg.add_op("a", OpKind.ADD)
    with pytest.raises(IRError):
        dfg.connect("a", "missing")


def test_successors_and_predecessors():
    dfg = make_chain()
    assert dfg.successors("a") == ["b"]
    assert dfg.predecessors("c") == ["b"]
    assert dfg.sources() == ["a"]
    assert dfg.sinks() == ["d"]


def test_topological_order_is_consistent():
    dfg = make_chain()
    order = dfg.topological_order()
    assert order.index("a") < order.index("b") < order.index("c") < order.index("d")


def test_backward_edges_do_not_create_cycles():
    dfg = make_chain()
    dfg.connect("c", "a", backward=True)
    order = dfg.topological_order()  # must not raise
    assert len(order) == 4
    assert dfg.predecessors("a") == []  # forward view ignores backward edges
    assert dfg.predecessors("a", forward_only=False) == ["c"]


def test_forward_cycle_rejected():
    dfg = DFG()
    dfg.add_op("a", OpKind.ADD)
    dfg.add_op("b", OpKind.ADD)
    dfg.connect("a", "b")
    dfg.connect("b", "a")
    with pytest.raises(IRError):
        dfg.topological_order()


def test_remove_operation_cleans_edges():
    dfg = make_chain()
    dfg.remove_operation("b")
    assert not dfg.has_op("b")
    assert dfg.predecessors("c") == []
    assert dfg.successors("a") == []
    assert all(e.src != "b" and e.dst != "b" for e in dfg.edges)


def test_count_by_kind_and_synthesizable():
    dfg = make_chain()
    counts = dfg.count_by_kind()
    assert counts[OpKind.ADD] == 1
    assert counts[OpKind.READ] == 1
    names = {op.name for op in dfg.synthesizable_operations()}
    assert names == {"b", "c"}


def test_copy_is_deep_for_structure():
    dfg = make_chain()
    clone = dfg.copy()
    clone.remove_operation("b")
    assert dfg.has_op("b")
    assert clone.num_operations == 3
    assert dfg.num_operations == 4
