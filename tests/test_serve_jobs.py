"""Tests of the serve job model: specs, fingerprints and records."""

import json

import pytest

from repro.errors import ReproError
from repro.serve.fakes import (
    explore_payload,
    submit_design_payload,
    sweep_payload,
)
from repro.serve.jobs import (
    JOB_KINDS,
    JOB_SCHEMA,
    JobRecord,
    JobSpec,
)


class TestJobSpec:
    def test_round_trips_every_kind(self):
        payloads = {
            "submit-design": submit_design_payload(),
            "sweep": sweep_payload(),
            "explore": explore_payload(),
        }
        assert set(payloads) == set(JOB_KINDS)
        for kind, payload in payloads.items():
            spec = JobSpec(kind=kind, payload=payload, tenant="team-a")
            again = JobSpec.from_dict(spec.to_dict())
            assert again == spec
            json.dumps(spec.to_dict())  # JSON-safe by construction

    def test_payload_parses_to_the_owning_layers_object(self):
        from repro.campaign.spec import ExploreJob, SweepJob
        from repro.verify.scenarios import ScenarioSpec

        assert isinstance(
            JobSpec("submit-design", submit_design_payload()).parse_payload(),
            ScenarioSpec)
        assert isinstance(JobSpec("sweep", sweep_payload()).parse_payload(),
                          SweepJob)
        assert isinstance(
            JobSpec("explore", explore_payload()).parse_payload(), ExploreJob)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            JobSpec(kind="train-model", payload={})

    def test_malformed_payload_rejected_at_construction(self):
        # Eager validation: a worker never sees a payload the owning
        # layer's from_dict would refuse.
        with pytest.raises(ReproError):
            JobSpec(kind="sweep", payload={"workload": "no-such-kernel",
                                           "latencies": [6]})
        with pytest.raises(ReproError):
            JobSpec(kind="submit-design", payload={"not": "a scenario"})

    def test_non_mapping_payload_rejected(self):
        with pytest.raises(ReproError):
            JobSpec(kind="sweep", payload=[1, 2, 3])

    def test_fingerprint_is_tenant_independent(self):
        payload = sweep_payload()
        a = JobSpec("sweep", payload, tenant="team-a")
        b = JobSpec("sweep", payload, tenant="team-b")
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_separates_kind_and_payload(self):
        assert JobSpec("sweep", sweep_payload()).fingerprint() \
            != JobSpec("sweep", sweep_payload(latencies=(6, 10))).fingerprint()

    def test_payload_is_frozen_copy(self):
        payload = sweep_payload()
        spec = JobSpec("sweep", payload)
        payload["latencies"].append(99)
        assert 99 not in spec.payload["latencies"]

    def test_bad_schema_rejected(self):
        data = JobSpec("sweep", sweep_payload()).to_dict()
        data["schema"] = JOB_SCHEMA + 1
        with pytest.raises(ReproError):
            JobSpec.from_dict(data)


class TestJobRecord:
    def _record(self):
        return JobRecord(job_id="job-000001",
                         spec=JobSpec("sweep", sweep_payload()),
                         state="done", seq=1,
                         result={"points": []},
                         attempts=[{"index": 0, "outcome": "ok"}])

    def test_round_trip(self):
        record = self._record()
        again = JobRecord.from_dict(record.to_dict())
        assert again == record
        json.dumps(record.to_dict())

    def test_status_view_has_no_result_body(self):
        record = self._record()
        status = record.status()
        assert status["job_id"] == "job-000001"
        assert status["state"] == "done"
        assert status["kind"] == "sweep"
        assert status["fingerprint"] == record.spec.fingerprint()
        assert status["attempts"] == 1
        assert "result" not in status

    def test_terminal_states(self):
        record = self._record()
        for state, terminal in [("pending", False), ("running", False),
                                ("done", True), ("failed", True),
                                ("cancelled", True), ("timeout", True)]:
            record.state = state
            assert record.terminal is terminal

    def test_unknown_state_rejected(self):
        data = self._record().to_dict()
        data["state"] = "paused"
        with pytest.raises(ReproError):
            JobRecord.from_dict(data)
