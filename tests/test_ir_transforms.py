"""Unit tests for IR transforms (DCE, constant folding, strength reduction)."""

import pytest

from repro.errors import IRError
from repro.ir import LinearDesignBuilder, OpKind
from repro.ir.transforms import (
    constant_fold,
    dead_code_elimination,
    strength_reduce,
    unroll_loop,
)
from repro.ir.validate import validate_design
from repro.workloads.resizer import resizer_design


def build_with_dead_code():
    builder = LinearDesignBuilder("dce", 2)
    a = builder.read("a", "e1", width=8)
    b = builder.read("b", "e1", width=8)
    live = builder.binary(OpKind.ADD, a.name, b.name, "e1", width=8, name="live")
    builder.binary(OpKind.MUL, a.name, b.name, "e1", width=8, name="dead")
    builder.write("out", "e2", live.name, width=8)
    return builder


def test_dce_removes_unobserved_operations():
    builder = build_with_dead_code()
    removed = dead_code_elimination(builder.dfg)
    assert removed == 1
    assert not builder.dfg.has_op("dead")
    assert builder.dfg.has_op("live")


def test_dce_keeps_operations_reaching_loop_carried_values():
    builder = LinearDesignBuilder("dce2", 1)
    seed = builder.op(OpKind.COPY, "e1", name="state", width=8, operand_widths=())
    one = builder.const(1, "e1", width=8)
    nxt = builder.binary(OpKind.ADD, seed.name, one.name, "e1", width=8, name="next")
    builder.loop_carry(nxt.name, seed.name)
    builder.write("out", "e1", nxt.name, width=8)
    removed = dead_code_elimination(builder.dfg)
    assert removed == 0


def test_constant_fold_collapses_constant_chains():
    builder = LinearDesignBuilder("fold", 1)
    c1 = builder.const(6, "e1", width=16)
    c2 = builder.const(7, "e1", width=16)
    product = builder.binary(OpKind.MUL, c1.name, c2.name, "e1", width=16, name="p")
    total = builder.binary(OpKind.ADD, product.name, c1.name, "e1", width=16, name="s")
    builder.write("out", "e1", total.name, width=16)
    folded = constant_fold(builder.dfg)
    assert folded == 2
    assert builder.dfg.op("p").kind is OpKind.CONST
    assert builder.dfg.op("p").value == 42
    assert builder.dfg.op("s").value == 48


def test_constant_fold_wraps_to_width():
    builder = LinearDesignBuilder("fold", 1)
    c1 = builder.const(127, "e1", width=8)
    c2 = builder.const(2, "e1", width=8)
    product = builder.binary(OpKind.MUL, c1.name, c2.name, "e1", width=8, name="p")
    builder.write("out", "e1", product.name, width=8)
    constant_fold(builder.dfg)
    assert builder.dfg.op("p").value == 254 - 256  # two's complement wrap


def test_constant_fold_skips_division_by_zero():
    builder = LinearDesignBuilder("fold", 1)
    c1 = builder.const(8, "e1", width=8)
    c0 = builder.const(0, "e1", width=8)
    div = builder.binary(OpKind.DIV, c1.name, c0.name, "e1", width=8, name="d")
    builder.write("out", "e1", div.name, width=8)
    folded = constant_fold(builder.dfg)
    assert folded == 0
    assert builder.dfg.op("d").kind is OpKind.DIV


def test_strength_reduction_rewrites_power_of_two_multiplies():
    builder = LinearDesignBuilder("sr", 1)
    a = builder.read("a", "e1", width=16)
    c8 = builder.const(8, "e1", width=16)
    mul = builder.binary(OpKind.MUL, a.name, c8.name, "e1", width=16, name="m")
    div = builder.binary(OpKind.DIV, a.name, c8.name, "e1", width=16, name="d")
    builder.write("out", "e1", mul.name, width=16)
    builder.write("out2", "e1", div.name, width=16)
    rewritten = strength_reduce(builder.dfg)
    assert rewritten == 2
    assert builder.dfg.op("m").kind is OpKind.SHL
    assert builder.dfg.op("d").kind is OpKind.SHR


def test_strength_reduction_ignores_non_powers_of_two():
    builder = LinearDesignBuilder("sr", 1)
    a = builder.read("a", "e1", width=16)
    c6 = builder.const(6, "e1", width=16)
    builder.binary(OpKind.MUL, a.name, c6.name, "e1", width=16, name="m")
    assert strength_reduce(builder.dfg) == 0
    assert builder.dfg.op("m").kind is OpKind.MUL


# -- loop unrolling ------------------------------------------------------------------


def accumulator_design(num_states=2, distance=1):
    """in -> add (accumulating its own output from `distance` iterations ago)."""
    builder = LinearDesignBuilder("acc", num_states)
    a = builder.read("a", "e1", width=8)
    acc = builder.binary(OpKind.ADD, a.name, a.name, "e1", width=8, name="acc")
    builder.loop_carry(acc.name, acc.name, dst_port=1, distance=distance)
    builder.write("out", f"e{num_states}", acc.name, width=8)
    return builder.build()


def test_unroll_copies_states_ops_and_forward_edges_per_iteration():
    design = accumulator_design(num_states=2)
    unrolled = unroll_loop(design, 3)
    assert unrolled.attrs["unrolled_from"] == "acc"
    assert unrolled.attrs["unroll_factor"] == 3
    assert len(unrolled.cfg.state_nodes) == 3 * len(design.cfg.state_nodes)
    assert unrolled.dfg.num_operations == 3 * design.dfg.num_operations
    for iteration in range(3):
        assert unrolled.dfg.has_op(f"acc@{iteration}")
    # The expansion is acyclic: no backward DFG edges remain.
    assert unrolled.dfg.backward_edges == []
    assert validate_design(unrolled) == []


def test_unroll_materialises_carried_edges_as_forward_edges():
    design = accumulator_design(num_states=2, distance=2)
    unrolled = unroll_loop(design, 5)
    carried = [(e.src, e.dst) for e in unrolled.dfg.forward_edges
               if e.src.startswith("acc@") and e.dst.startswith("acc@")]
    # distance=2: acc@i consumes acc@(i-2) for i >= 2 only.
    assert sorted(carried) == [("acc@0", "acc@2"), ("acc@1", "acc@3"),
                               ("acc@2", "acc@4")]


def test_unroll_suffixes_io_ports_per_iteration():
    design = accumulator_design()
    unrolled = unroll_loop(design, 2)
    ports = {op.attrs["port"] for op in unrolled.dfg.operations
             if "port" in op.attrs}
    assert ports == {"a@0", "a@1", "out@0", "out@1"}


def test_unroll_factor_one_is_an_isomorphic_rename():
    design = accumulator_design(num_states=3)
    unrolled = unroll_loop(design, 1)
    assert unrolled.dfg.num_operations == design.dfg.num_operations
    assert len(unrolled.cfg.state_nodes) == len(design.cfg.state_nodes)
    # The single carried edge has no in-range source iteration and drops.
    assert unrolled.dfg.backward_edges == []


def test_unroll_rejects_bad_factor_and_branchy_loops():
    with pytest.raises(IRError, match=">= 1"):
        unroll_loop(accumulator_design(), 0)
    branchy = resizer_design()
    with pytest.raises(IRError, match="straight-line"):
        unroll_loop(branchy, 2)
