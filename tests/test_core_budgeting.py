"""Tests for slack budgeting (paper Fig. 7)."""

import pytest

from repro.core.budgeting import budget_slack
from repro.errors import TimingError
from repro.ir.operations import OpKind
from repro.workloads import interpolation_design


def test_budgeting_interpolation_is_feasible(interpolation, library):
    result = budget_slack(interpolation, library, clock_period=1100.0)
    assert result.feasible
    assert result.timing.worst_slack() >= -1e-6


def test_budgeted_delays_stay_within_library_range(interpolation, library):
    result = budget_slack(interpolation, library, clock_period=1100.0)
    for op in interpolation.dfg.operations:
        if not op.is_synthesizable:
            continue
        low, high = library.delay_range_for_op(op)
        assert low - 1e-6 <= result.delay_of(op.name) <= high + 1e-6
        variant = result.variant_of(op.name)
        assert variant is not None
        assert variant.delay == pytest.approx(result.delay_of(op.name))


def test_budgeting_saves_area_versus_all_fastest(interpolation, library):
    result = budget_slack(interpolation, library, clock_period=1100.0)
    all_fastest = sum(
        library.fastest_variant(op).area
        for op in interpolation.dfg.operations if op.is_synthesizable
    )
    assert result.total_variant_area() < all_fastest
    histogram = result.grade_histogram()
    assert sum(histogram.values()) == len(
        [op for op in interpolation.dfg.operations if op.is_synthesizable])
    # At least one operation must have been slowed below the fastest grade.
    assert any(grade > 0 for grade in histogram)


def test_budgeting_upgrades_when_started_slow(interpolation, library):
    """With the 1100 ps clock the slowest multipliers (610 ps) cannot chain
    twice in a cycle, so the negative-slack repair must upgrade something."""
    result = budget_slack(interpolation, library, clock_period=1100.0,
                          start_from="slowest")
    assert result.feasible
    assert result.upgrades > 0
    assert result.iterations >= result.upgrades + result.downgrades


def test_budgeting_with_generous_clock_picks_slowest_grades(library):
    """With a very relaxed clock, a shallow design settles on the slowest
    (cheapest) grade of every resource."""
    from repro.ir import LinearDesignBuilder

    builder = LinearDesignBuilder("easy", 3)
    a = builder.read("a", "e1", width=16)
    b = builder.read("b", "e1", width=16)
    product = builder.binary(OpKind.MUL, a.name, b.name, "e1", width=16, name="m")
    total = builder.binary(OpKind.ADD, a.name, b.name, "e1", width=16, name="s")
    builder.write("p", "e3", product.name, width=16)
    builder.write("q", "e3", total.name, width=16)
    design = builder.build()

    result = budget_slack(design, library, clock_period=4000.0)
    assert result.feasible
    for name in ("m", "s"):
        op = design.dfg.op(name)
        assert result.variant_of(name).grade == library.slowest_variant(op).grade


def test_budgeting_detects_infeasible_clock(interpolation, library):
    """A clock shorter than the fastest multiplier can never be met."""
    result = budget_slack(interpolation, library, clock_period=400.0)
    assert not result.feasible
    assert result.timing.worst_slack() < 0


def test_pinned_variants_are_not_changed(interpolation, library):
    pinned_op = "mul_x_0"
    op = interpolation.dfg.op(pinned_op)
    fastest = library.fastest_variant(op)
    result = budget_slack(interpolation, library, clock_period=1100.0,
                          pinned_variants={pinned_op: fastest})
    assert result.variant_of(pinned_op) is fastest


def test_warm_start_preserves_feasibility(interpolation, library):
    first = budget_slack(interpolation, library, clock_period=1100.0)
    warm = {name: variant for name, variant in first.variants.items()
            if variant is not None}
    second = budget_slack(interpolation, library, clock_period=1100.0,
                          initial_variants=warm)
    assert second.feasible
    assert second.iterations <= first.iterations


def test_margin_binning_changes_margin(interpolation, library):
    tight = budget_slack(interpolation, library, 1100.0, margin_fraction=0.0)
    loose = budget_slack(interpolation, library, 1100.0, margin_fraction=0.10)
    assert tight.margin == 0.0
    assert loose.margin == pytest.approx(110.0)
    assert tight.feasible and loose.feasible


def test_invalid_clock_rejected(interpolation, library):
    with pytest.raises(TimingError):
        budget_slack(interpolation, library, clock_period=0.0)
