"""Tests for the timed-DFG construction (paper Section V, Definition 2)."""

import pytest

from repro.core.latency import LatencyAnalysis
from repro.core.opspan import OperationSpans
from repro.core.timed_dfg import TimedDFG, build_timed_dfg, is_sink_name, sink_name
from repro.errors import TimingError
from repro.ir.operations import OpKind


@pytest.fixture(scope="module")
def timed(resizer_main):
    return build_timed_dfg(resizer_main)


def test_constants_are_excluded(resizer_main, timed):
    const_names = {op.name for op in resizer_main.dfg.operations
                   if op.kind is OpKind.CONST}
    assert const_names
    for name in const_names:
        assert not timed.has_node(name)


def test_every_operation_gets_a_sink(resizer_main, timed):
    for op in resizer_main.dfg.operations:
        if op.kind is OpKind.CONST:
            continue
        assert timed.has_node(op.name)
        assert timed.has_node(sink_name(op.name))
    assert len(timed.operation_nodes) * 2 == timed.num_nodes


def test_edge_weights_are_cfg_latencies(resizer_main, timed):
    weights = {(e.src, e.dst): e.weight for e in timed.edges}
    assert weights[("rd_a", "add")] == 0
    assert weights[("add", "div")] == 0      # both early on e1
    assert weights[("add", "mul")] == 1      # crossing s1 to e5
    assert weights[("sub", "mux")] == 1      # sub early e1, mux early e6
    assert weights[("mul", "mux")] == 0
    assert weights[("mux", "wr")] == 1       # crossing s2


def test_sink_weights_span_early_to_late(resizer_main):
    spans = OperationSpans(resizer_main, strict_io_successors=True)
    timed = build_timed_dfg(resizer_main, spans=spans)
    weights = {(e.src, e.dst): e.weight for e in timed.edges}
    assert weights[("mux", sink_name("mux"))] == 0
    assert weights[("wr", sink_name("wr"))] == 0
    assert weights[("div", sink_name("div"))] >= 1


def test_topological_order_puts_sinks_after_their_op(timed):
    order = timed.topological_order()
    for node in timed.operation_nodes:
        assert order.index(node) < order.index(sink_name(node))


def test_cyclic_timed_dfg_rejected():
    timed = TimedDFG("cyclic")
    timed.add_node("a")
    timed.add_node("b")
    timed.add_edge("a", "b", 0)
    timed.add_edge("b", "a", 0)
    with pytest.raises(TimingError):
        timed.topological_order()


def test_negative_weights_rejected():
    timed = TimedDFG()
    timed.add_node("a")
    timed.add_node("b")
    with pytest.raises(TimingError):
        timed.add_edge("a", "b", -1)


def test_duplicate_nodes_rejected():
    timed = TimedDFG()
    timed.add_node("a")
    with pytest.raises(TimingError):
        timed.add_node("a")


def test_backward_data_edges_are_dropped(interpolation):
    timed = build_timed_dfg(interpolation)
    pairs = {(e.src, e.dst) for e in timed.edges}
    for edge in interpolation.dfg.backward_edges:
        assert (edge.src, edge.dst) not in pairs
    timed.topological_order()  # acyclic despite the loop-carried dependencies


def test_sink_naming_helpers():
    assert is_sink_name(sink_name("x"))
    assert not is_sink_name("x")
