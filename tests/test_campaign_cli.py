"""The ``repro campaign`` CLI: plan / run-shard / merge / report / bench."""

import json
import os

import pytest

from repro.campaign.cli import main
from repro.cli import main as repro_main

SPEC = {
    "schema": 1, "name": "cli-tiny", "seed": 5, "shards": 2,
    "fuzz": {"iterations": 4, "max_segments": 3},
    "sweeps": [{"workload": "idct", "latencies": [6, 7, 8],
                "params": {"rows": 1}}],
    "explorations": [],
}


@pytest.fixture(scope="module")
def spec_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("spec") / "spec.json"
    path.write_text(json.dumps(SPEC), encoding="utf-8")
    return str(path)


@pytest.fixture(scope="module")
def campaign_run(spec_path, tmp_path_factory):
    """Both shards executed and merged once, shared by the read-only tests."""
    root = tmp_path_factory.mktemp("campaign-cli")
    shard_dirs = []
    for index in range(2):
        out = str(root / f"shard-{index}")
        assert main(["run-shard", "--spec", spec_path,
                     "--shard", str(index), "--out", out]) == 0
        shard_dirs.append(out)
    merged = str(root / "merged")
    history = str(root / "history.jsonl")
    assert main(["merge", *shard_dirs, "--out", merged,
                 "--history", history, "--run", "cli-test"]) == 0
    return {"shards": shard_dirs, "merged": merged, "history": history,
            "root": root}


def test_plan_prints_the_partition(spec_path, capsys):
    assert main(["plan", "--spec", spec_path]) == 0
    output = capsys.readouterr().out
    assert "campaign 'cli-tiny'" in output
    assert "shard 0" in output and "shard 1" in output
    assert "3 sweep point(s)" in output


def test_plan_json_payload(spec_path, tmp_path):
    path = str(tmp_path / "plan.json")
    assert main(["plan", "--spec", spec_path, "--json", path]) == 0
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["spec"]["name"] == "cli-tiny"
    assert len(payload["plans"]) == 2


def test_plan_overrides_seed_and_shards(spec_path, capsys):
    assert main(["plan", "--spec", spec_path, "--seed", "99",
                 "--shards", "3"]) == 0
    output = capsys.readouterr().out
    assert "seed 99" in output
    assert "3 shard(s)" in output


def test_plan_nightly_builtin(capsys):
    assert main(["plan", "--nightly", "--seed", "20260807"]) == 0
    output = capsys.readouterr().out
    assert "campaign 'nightly'" in output
    assert "seed 20260807" in output


def test_run_shard_writes_artifacts(campaign_run):
    for shard_dir in campaign_run["shards"]:
        for name in ("corpus.jsonl", "store.jsonl", "shard-metrics.json"):
            assert os.path.exists(os.path.join(shard_dir, name))


def test_merge_produced_the_union_and_history(campaign_run):
    merged = campaign_run["merged"]
    with open(os.path.join(merged, "merge-report.json"), "r",
              encoding="utf-8") as handle:
        report = json.load(handle)
    assert report["clean"] is True
    assert report["store"]["unique"] == 3
    assert len(report["shards"]) == 2
    with open(campaign_run["history"], "r", encoding="utf-8") as handle:
        records = [json.loads(line) for line in handle if line.strip()]
    assert len(records) == 1
    assert records[0]["type"] == "campaign"
    assert records[0]["run"] == "cli-test"
    assert records[0]["store"]["records"] == 3


def test_merge_history_requires_out(campaign_run, capsys):
    code = main(["merge", *campaign_run["shards"],
                 "--history", "nope.jsonl"])
    assert code == 2
    assert "--history needs --out" in capsys.readouterr().err


def test_merge_dry_run(campaign_run, capsys):
    assert main(["merge", *campaign_run["shards"]]) == 0
    assert "(dry run)" in capsys.readouterr().out


def test_bench_and_report(campaign_run, tmp_path, capsys):
    timings = tmp_path / "timings.json"
    timings.write_text(json.dumps({"benchmarks": [
        {"fullname": "b::one", "stats": {"median": 0.5}}]}),
        encoding="utf-8")
    assert main(["bench", "--timings", str(timings),
                 "--history", campaign_run["history"],
                 "--run", "cli-test"]) == 0
    json_path = str(tmp_path / "trend.json")
    md_path = str(tmp_path / "trend.md")
    assert main(["report", "--history", campaign_run["history"],
                 "--json", json_path, "--markdown", md_path]) == 0
    capsys.readouterr()
    with open(json_path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    assert [row["run"] for row in report["campaigns"]] == ["cli-test"]
    assert report["benches"]["b::one"]["latest"] == 0.5
    with open(md_path, "r", encoding="utf-8") as handle:
        markdown = handle.read()
    assert "Campaign trend report" in markdown
    # Without output paths the markdown prints to stdout.
    assert main(["report", "--history", campaign_run["history"]]) == 0
    assert "Campaign trend report" in capsys.readouterr().out


def test_campaign_is_wired_into_the_unified_cli(spec_path, capsys):
    assert repro_main(["campaign", "plan", "--spec", spec_path]) == 0
    assert "campaign 'cli-tiny'" in capsys.readouterr().out
    assert repro_main(["--help"]) == 0
    assert "campaign" in capsys.readouterr().out


def test_shard_index_out_of_range_is_a_cli_error(spec_path, tmp_path, capsys):
    code = main(["run-shard", "--spec", spec_path, "--shard", "7",
                 "--out", str(tmp_path / "x")])
    assert code == 2
    assert "out of range" in capsys.readouterr().err


def test_missing_spec_file_is_a_cli_error(tmp_path, capsys):
    code = main(["plan", "--spec", str(tmp_path / "missing.json")])
    assert code != 0
