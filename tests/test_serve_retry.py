"""Unit tests of the serve layer's retry/timeout/backoff policy.

Everything here runs on the fake clock — no real sleeping — except the
deadline tests, which exercise the real thread-based cutoff with
sub-second budgets.
"""

import time

import pytest

from repro.errors import ReproError
from repro.serve.fakes import FakeClock
from repro.serve.retry import AttemptRecord, RetryPolicy, run_with_retry


class TestPolicyValidation:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ReproError):
            RetryPolicy(max_attempts=0)

    def test_rejects_negative_backoff_and_jitter(self):
        with pytest.raises(ReproError):
            RetryPolicy(backoff_seconds=-1.0)
        with pytest.raises(ReproError):
            RetryPolicy(jitter_fraction=-0.1)

    def test_to_dict_is_json_safe(self):
        import json

        json.dumps(RetryPolicy(deadline_seconds=5.0).to_dict())


class TestBackoffSequence:
    def test_deterministic_under_seeded_jitter(self):
        policy = RetryPolicy(max_attempts=5, jitter_seed=42)
        assert policy.backoff_sequence() == policy.backoff_sequence()

    def test_different_seeds_decorrelate(self):
        a = RetryPolicy(max_attempts=5, jitter_seed=1).backoff_sequence()
        b = RetryPolicy(max_attempts=5, jitter_seed=2).backoff_sequence()
        assert a != b

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(max_attempts=10, backoff_seconds=1.0,
                             backoff_multiplier=2.0, max_backoff_seconds=4.0,
                             jitter_fraction=0.0)
        assert policy.backoff_sequence() == [1.0, 2.0, 4.0, 4.0, 4.0,
                                             4.0, 4.0, 4.0, 4.0]

    def test_jitter_stretches_within_fraction(self):
        policy = RetryPolicy(max_attempts=6, backoff_seconds=1.0,
                             backoff_multiplier=1.0, jitter_fraction=0.5)
        for delay in policy.backoff_sequence():
            assert 1.0 <= delay <= 1.5

    def test_single_attempt_has_no_backoff(self):
        assert RetryPolicy(max_attempts=1).backoff_sequence() == []


class TestRunWithRetry:
    def test_first_try_success_records_one_ok_attempt(self):
        clock = FakeClock()
        outcome = run_with_retry(lambda: 42, RetryPolicy(),
                                 clock=clock, sleep=clock.sleep)
        assert outcome.ok and outcome.value == 42
        assert [a.outcome for a in outcome.attempts] == ["ok"]
        assert outcome.failure is None
        assert clock.sleeps == []

    def test_errors_retry_with_the_policy_backoff_schedule(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=3, backoff_seconds=0.5,
                             jitter_seed=7)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ReproError(f"transient {len(calls)}")
            return "done"

        outcome = run_with_retry(flaky, policy, clock=clock,
                                 sleep=clock.sleep)
        assert outcome.ok and outcome.value == "done"
        assert [a.outcome for a in outcome.attempts] == ["error", "error",
                                                         "ok"]
        # The exact sleeps are the policy's first two backoff entries.
        assert clock.sleeps == policy.backoff_sequence()[:2]
        assert [a.backoff_seconds for a in outcome.attempts[:-1]] \
            == clock.sleeps

    def test_max_retries_produces_structured_error_failure(self):
        clock = FakeClock()

        def always_fails():
            raise ValueError("permanently broken")

        outcome = run_with_retry(always_fails,
                                 RetryPolicy(max_attempts=3), what="job j1",
                                 clock=clock, sleep=clock.sleep)
        assert not outcome.ok and not outcome.timed_out
        assert outcome.failure["kind"] == "error"
        assert outcome.failure["what"] == "job j1"
        assert "permanently broken" in outcome.failure["error"]
        assert len(outcome.failure["attempts"]) == 3
        assert all(a["outcome"] == "error"
                   for a in outcome.failure["attempts"])

    def test_deadline_exceeded_is_terminal_not_retried(self):
        calls = []

        def hangs():
            calls.append(1)
            time.sleep(30)

        outcome = run_with_retry(
            hangs, RetryPolicy(max_attempts=5, deadline_seconds=0.05),
            what="hung job")
        assert not outcome.ok and outcome.timed_out
        assert outcome.failure["kind"] == "timeout"
        assert len(calls) == 1  # no retry after a timeout
        assert [a.outcome for a in outcome.attempts] == ["timeout"]

    def test_deadline_consumed_by_earlier_attempts_fails_fast(self):
        # The fake clock's tick consumes the whole deadline before the
        # second attempt starts; call_with_deadline must fail it without
        # even invoking the body again.
        clock = FakeClock(tick=0.0)
        calls = []

        def fails_once():
            calls.append(1)
            if len(calls) == 1:
                clock.advance(10.0)  # the attempt "took" 10 virtual seconds
                raise ReproError("slow failure")
            return "never reached in time"

        outcome = run_with_retry(
            fails_once,
            RetryPolicy(max_attempts=3, deadline_seconds=5.0,
                        backoff_seconds=0.0),
            clock=clock, sleep=clock.sleep)
        assert not outcome.ok and outcome.timed_out
        assert len(calls) == 1
        assert [a.outcome for a in outcome.attempts] == ["error", "timeout"]

    def test_no_deadline_runs_inline(self):
        # Inline execution: the body sees the caller's thread (the
        # deadline-off configuration must add zero threading).
        import threading

        caller = threading.current_thread()
        seen = []
        outcome = run_with_retry(
            lambda: seen.append(threading.current_thread()),
            RetryPolicy(deadline_seconds=None))
        assert outcome.ok
        assert seen == [caller]

    def test_attempt_records_are_json_safe(self):
        import json

        record = AttemptRecord(index=0, outcome="error", error="boom",
                               elapsed_seconds=0.5, backoff_seconds=0.1)
        json.dumps(record.as_dict())
