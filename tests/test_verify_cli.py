"""The ``repro-verify`` CLI: determinism, exit codes, corpus wiring."""

import json
import re

import pytest

from repro.verify import runner as runner_mod
from repro.verify.cli import main
from repro.verify.corpus import Corpus
from repro.verify.oracles import ORACLES, Oracle
from repro.verify.runner import run_fuzz
from repro.verify.scenarios import generate_scenario


def _digest_of(output: str) -> str:
    match = re.search(r"scenario digest: ([0-9a-f]{64})", output)
    assert match, output
    return match.group(1)


def test_run_is_deterministic_same_seed_same_digest(capsys):
    assert main(["run", "--iterations", "25", "--seed", "3"]) == 0
    first = _digest_of(capsys.readouterr().out)
    assert main(["run", "--iterations", "25", "--seed", "3"]) == 0
    second = _digest_of(capsys.readouterr().out)
    assert first == second

    assert main(["run", "--iterations", "25", "--seed", "4"]) == 0
    other = _digest_of(capsys.readouterr().out)
    assert other != first


def test_acceptance_200_iterations_seed_0_is_deterministic():
    """The acceptance criterion, at the API level: 200 iterations at seed 0
    complete without violations and reproduce the same scenario
    fingerprints run over run."""
    first = run_fuzz(seed=0, iterations=200)
    second = run_fuzz(seed=0, iterations=200)
    assert first.ok and second.ok
    assert first.iterations == second.iterations == 200
    assert first.fingerprints == second.fingerprints
    assert first.scenario_digest == second.scenario_digest


def test_acceptance_pipelined_vs_unrolled_200_iterations_clean():
    """The pipelined acceptance criterion: 200 iterations of the
    loop-carried straight-line family against the pipelined-vs-unrolled
    oracle find no violation."""
    from repro.verify.scenarios import ScenarioProfile

    profile = ScenarioProfile(diamond_probability=0.0,
                              pipeline_probability=1.0)
    report = run_fuzz(seed=0, iterations=200,
                      oracle_names=["pipelined-vs-unrolled"], profile=profile)
    assert report.ok, [f.details for f in report.failures[:3]]
    assert report.checked_per_oracle == {"pipelined-vs-unrolled": 200}


def test_run_respects_oracle_subset(capsys):
    assert main(["run", "--iterations", "6", "--seed", "0",
                 "--oracles", "pareto-front"]) == 0
    out = capsys.readouterr().out
    assert "pareto-front: 6 checked" in out
    assert "sequential-slack" not in out


def test_run_budget_seconds_stops_early(capsys):
    assert main(["run", "--budget-seconds", "0", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "0 scenario check(s)" in out
    assert "budget exhausted" in out


def test_run_rejects_unknown_oracles(capsys):
    assert main(["run", "--iterations", "1",
                 "--oracles", "definitely-not-an-oracle"]) == 2
    assert "unknown oracle" in capsys.readouterr().err


def test_list_oracles(capsys):
    assert main(["run", "--list-oracles"]) == 0
    out = capsys.readouterr().out
    for name in ORACLES:
        assert name in out


@pytest.fixture()
def injected_oracle():
    """A deliberately broken oracle registered for the duration of a test."""

    def no_multipliers(spec, library):
        from repro.ir.operations import OpKind

        if any(op.kind is OpKind.MUL for op in spec.design().dfg.operations):
            return "injected: design contains a multiplier"
        return ""

    name = "injected-cli-mul-ban"
    ORACLES[name] = Oracle(name=name, description="test oracle",
                           check=no_multipliers)
    try:
        yield name
    finally:
        del ORACLES[name]


def test_run_records_failures_and_exits_nonzero(tmp_path, capsys,
                                                injected_oracle):
    corpus_path = str(tmp_path / "fuzz.jsonl")
    code = main(["run", "--iterations", "20", "--seed", "0",
                 "--oracles", injected_oracle, "--corpus", corpus_path])
    out = capsys.readouterr().out
    assert code == 1
    assert "violation" in out
    assert "reproducer:" in out

    corpus = Corpus(corpus_path)
    assert len(corpus) >= 2  # the raw failure plus its shrunk reproducer
    kinds = {record["kind"] for record in corpus.records()}
    assert kinds == {"failure", "shrunk"}
    shrunk = [record for record in corpus.records()
              if record["kind"] == "shrunk"]
    assert min(record["ops"] for record in shrunk) <= 8


def test_replay_reports_still_failing_entries(tmp_path, capsys,
                                              injected_oracle):
    corpus_path = str(tmp_path / "fuzz.jsonl")
    main(["run", "--iterations", "20", "--seed", "0",
          "--oracles", injected_oracle, "--corpus", corpus_path])
    capsys.readouterr()

    # Still failing while the injected oracle is registered.
    assert main(["replay", "--corpus", corpus_path]) == 1
    assert "still failing" in capsys.readouterr().out


def test_replay_unknown_oracle_reports_clear_error(tmp_path, capsys):
    """A corpus entry whose oracle has been renamed/removed must fail the
    replay with a readable 'unknown oracle' outcome — not crash, and not be
    skipped as a silent pass."""
    corpus_path = str(tmp_path / "stale.jsonl")
    corpus = Corpus(corpus_path)
    corpus.add(generate_scenario(1), "retired-oracle", "was failing once")
    corpus.add(generate_scenario(2), "pareto-front", "fine either way")

    assert main(["replay", "--corpus", corpus_path]) == 1
    out = capsys.readouterr().out
    # Both records are accounted for: the live oracle replays, the stale one
    # fails loudly with the reason and the available registry.
    assert "replayed 2 record(s)" in out
    assert "unknown oracle" in out and "retired-oracle" in out
    assert "Traceback" not in out

    # An explicit filter that excludes the stale record still works.
    assert main(["replay", "--corpus", corpus_path,
                 "--oracles", "pareto-front"]) == 0


def test_replay_treats_fixed_entries_as_success(tmp_path, capsys):
    corpus_path = str(tmp_path / "fixed.jsonl")
    corpus = Corpus(corpus_path)
    # A record for a real oracle that (correctly) passes on this scenario:
    # the regression it once caught is "fixed".
    corpus.add(generate_scenario(1), "pareto-front", "was failing once")
    assert main(["replay", "--corpus", corpus_path]) == 0
    assert "1 fixed" in capsys.readouterr().out


def test_shrink_subcommand_minimizes_a_corpus_entry(tmp_path, capsys,
                                                    injected_oracle):
    corpus_path = str(tmp_path / "fuzz.jsonl")
    # Record one unshrunk failure.
    code = main(["run", "--iterations", "20", "--seed", "0",
                 "--oracles", injected_oracle, "--corpus", corpus_path,
                 "--no-shrink"])
    assert code == 1
    capsys.readouterr()
    corpus = Corpus(corpus_path)
    fingerprint = corpus.records()[0]["fingerprint"]

    assert main(["shrink", "--corpus", corpus_path,
                 "--entry", fingerprint[:16]]) == 1
    out = capsys.readouterr().out
    assert "shrunk" in out
    spec_line = out.strip().splitlines()[-1]
    assert json.loads(spec_line)["schema"] == 1

    assert main(["shrink", "--corpus", corpus_path,
                 "--entry", "ffffffff"]) == 2
    assert "no corpus entry" in capsys.readouterr().err


def test_seed_from_date_is_the_utc_date(monkeypatch, capsys):
    calls = {}

    def fake_run_fuzz(**kwargs):
        calls.update(kwargs)
        return runner_mod.FuzzReport(seed=kwargs["seed"])

    monkeypatch.setattr("repro.verify.cli.run_fuzz", fake_run_fuzz)
    assert main(["run", "--iterations", "1", "--seed-from-date"]) == 0
    out = capsys.readouterr().out
    assert re.search(r"seed (20\d{6}):", out)
    assert 20000101 <= calls["seed"] <= 21000101
