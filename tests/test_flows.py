"""End-to-end tests of the conventional and slack-based flows and the DSE."""

import pytest

from repro.errors import ReproError
from repro.flows import (
    DesignPoint,
    conventional_flow,
    format_table,
    idct_design_points,
    run_dse,
    slack_based_flow,
    table1_rows,
    table2_rows,
    table4_rows,
    table5_rows,
)
from repro.workloads import idct_design, interpolation_design


def test_conventional_flow_on_interpolation(interpolation, library):
    result = conventional_flow(interpolation, library, clock_period=1100.0)
    assert result.flow == "conventional"
    assert result.meets_timing
    assert result.schedule.is_complete()
    assert result.total_area > 0
    assert result.latency_steps <= 3
    assert result.scheduling_seconds <= result.runtime_seconds
    summary = result.summary()
    assert summary["design"] == interpolation.name


def test_flow_requires_a_clock_period(interpolation, library):
    clone = interpolation.copy()
    clone.clock_period = None
    with pytest.raises(ReproError):
        conventional_flow(clone, library)


def test_slowest_first_flow_is_labelled(interpolation, library):
    result = conventional_flow(interpolation, library, clock_period=1100.0,
                               initial_grades="slowest")
    assert result.flow == "slowest-first"
    assert result.meets_timing


def test_slack_flow_saves_area_on_interpolation(interpolation, library):
    conv = conventional_flow(interpolation, library, clock_period=1100.0)
    slack = slack_based_flow(interpolation, library, clock_period=1100.0)
    assert slack.meets_timing
    assert slack.total_area < conv.total_area
    # The motivating example promises a large gap (the paper reports ~36 %).
    saving = (conv.total_area - slack.total_area) / conv.total_area
    assert saving > 0.10
    assert slack.details["rebudget_count"] >= 1


def test_slack_flow_without_rebudgeting_still_works(interpolation, library):
    result = slack_based_flow(interpolation, library, clock_period=1100.0,
                              rebudget_every_edge=False)
    assert result.meets_timing
    assert result.details["rebudget_count"] == 0


def test_flows_on_idct_point(small_idct, library):
    conv = conventional_flow(small_idct, library, clock_period=1500.0)
    slack = slack_based_flow(small_idct, library, clock_period=1500.0)
    assert conv.meets_timing and slack.meets_timing
    assert conv.schedule.is_complete() and slack.schedule.is_complete()
    # The headline claim: the slack-based flow is not larger on a
    # moderately-utilised IDCT point.
    assert slack.total_area <= conv.total_area * 1.02


def test_pipelined_point_uses_more_area_than_unpipelined(library):
    base = idct_design(latency=16, rows=1, clock_period=1500.0)
    piped = idct_design(latency=16, rows=1, clock_period=1500.0, pipeline_ii=4)
    conv = conventional_flow(base, library, clock_period=1500.0)
    conv_piped = conventional_flow(piped, library, clock_period=1500.0, pipeline_ii=4)
    assert conv_piped.total_area > conv.total_area
    assert conv_piped.power.throughput > conv.power.throughput


def test_idct_design_points_cover_the_paper_sweep():
    points = idct_design_points()
    assert len(points) == 15
    names = [p.name for p in points]
    assert names[0] == "D1" and names[-1] == "D15"
    latencies = {p.latency for p in points}
    assert min(latencies) == 8 and max(latencies) == 32
    assert any(p.is_pipelined for p in points)
    assert any(not p.is_pipelined for p in points)


def test_run_dse_small_sweep(library):
    points = [
        DesignPoint(name="P1", latency=12, clock_period=1500.0),
        DesignPoint(name="P2", latency=20, clock_period=1500.0),
    ]
    result = run_dse(
        lambda point: idct_design(latency=point.latency, rows=1,
                                  clock_period=point.clock_period,
                                  pipeline_ii=point.pipeline_ii),
        library, points,
    )
    assert len(result.entries) == 2
    assert result.wall_time_seconds > 0
    assert result.area_range() >= 1.0
    assert result.throughput_range() >= 1.0
    assert result.wins() + result.losses() <= 2
    header, rows = table4_rows(result)
    assert rows[-1][0] == "Average"
    assert len(rows) == 3


def test_run_dse_rejects_bad_scheduling_mode(library):
    with pytest.raises(ReproError):
        run_dse(lambda p: idct_design(latency=8, rows=1), library,
                [DesignPoint(name="P", latency=8)], scheduling="overlapped")


def test_report_tables(interpolation, library):
    header, rows = table1_rows(library)
    assert rows[0][2:] == ["430", "470", "510", "540", "570", "610"]
    assert rows[1][2:] == ["878", "662", "618", "575", "545", "510"]
    assert rows[2][2:] == ["220", "400", "580", "760", "940", "1220"]
    assert rows[3][2:] == ["556", "254", "225", "216", "210", "206"]

    conv = conventional_flow(interpolation, library, clock_period=1100.0)
    slack = slack_based_flow(interpolation, library, clock_period=1100.0)
    header2, rows2 = table2_rows(conv, conv, slack)
    assert len(rows2) == 3

    header5, rows5 = table5_rows(1.0, 1.2, 10.0)
    assert rows5[0] == ["1.00", "1.20", "10.00"]

    text = format_table(header, rows, title="Table 1")
    assert "Table 1" in text and "Mul 8*8bit" in text
