"""The compact CSR graph substrate (repro.core.graphkit).

Two layers of guarantees:

* structural — interning, CSR adjacency, cached topological order and
  mutation invalidation of :class:`CompactTimedGraph` /
  :meth:`TimedDFG.compact`;
* behavioural — the array kernels are **exactly** equal (``==`` on every
  float) to the dict-based ``*_reference`` implementations.  The seeded
  sweep below drives :func:`kernel_vs_reference_problems` — the same
  predicate the ``graphkit-kernels`` verify oracle fuzzes on generated
  diamond-CFG scenarios — over 200 ``random_layered_design_seeded`` designs
  with mixed widths and wait-state counts, so any failure here shrinks to a
  tiny reproducer through the fuzzing machinery too.
"""

import pytest

from repro.errors import TimingError
from repro.core.graphkit import (
    CompactTimedGraph,
    arrival_kernel,
    kernel_vs_reference_problems,
    required_kernel,
)
from repro.core.sequential_slack import (
    compute_sequential_slack,
    compute_sequential_slack_reference,
)
from repro.core.timed_dfg import TimedDFG, build_timed_dfg
from repro.ir.operations import OpKind
from repro.lib.tsmc90 import tsmc90_library
from repro.rtl.timing import analyze_state_timing, analyze_state_timing_reference
from repro.flows import conventional_flow
from repro.workloads import random_layered_design_seeded, segmented_design


@pytest.fixture(scope="module")
def library():
    return tsmc90_library()


def _delays_for(design, library):
    return {op.name: library.operation_delay(op)
            for op in design.dfg.operations if op.kind is not OpKind.CONST}


# -- structural ---------------------------------------------------------------------


def _diamond_timed():
    timed = TimedDFG("t")
    for node in ("a", "b", "c", "d"):
        timed.add_node(node)
    timed.add_edge("a", "b", 0)
    timed.add_edge("a", "c", 1)
    timed.add_edge("b", "d", 0)
    timed.add_edge("c", "d", 2)
    return timed


def test_interning_and_csr_layout():
    graph = CompactTimedGraph.from_timed(_diamond_timed())
    assert graph.names == ("a", "b", "c", "d")
    assert graph.index == {"a": 0, "b": 1, "c": 2, "d": 3}
    assert graph.num_nodes == 4 and graph.num_edges == 4
    # CSR successors of a: slots [0, 2) hold (b, 0) and (c, 1).
    assert list(graph.succ_indptr) == [0, 2, 3, 4, 4]
    assert list(graph.succ_dst[0:2]) == [1, 2]
    assert list(graph.succ_weight[0:2]) == [0, 1]
    # CSR predecessors of d: slots hold (b, 0) and (c, 2).
    lo, hi = graph.pred_indptr[3], graph.pred_indptr[4]
    assert sorted(zip(graph.pred_src[lo:hi], graph.pred_weight[lo:hi])) \
        == [(1, 0), (2, 2)]
    assert list(graph.topo) == [0, 1, 2, 3]


def test_compact_topological_order_matches_timed_dfg():
    timed = _diamond_timed()
    graph = timed.compact()
    assert [graph.names[i] for i in graph.topo] == timed.topological_order()


def test_compact_is_cached_and_invalidated_on_mutation():
    timed = _diamond_timed()
    first = timed.compact()
    assert timed.compact() is first
    timed.add_node("e")
    second = timed.compact()
    assert second is not first
    assert second.num_nodes == 5
    timed.add_edge("d", "e", 0)
    assert timed.compact() is not second


def test_cyclic_graph_raises_on_topo():
    timed = TimedDFG("cyclic")
    timed.add_node("a")
    timed.add_node("b")
    timed.add_edge("a", "b", 0)
    timed.add_edge("b", "a", 0)
    with pytest.raises(TimingError, match="cyclic"):
        timed.topological_order()
    with pytest.raises(TimingError, match="cyclic"):
        arrival_kernel(timed.compact(), [0.0, 0.0], 1000.0)


def test_duplicate_names_and_bad_edges_rejected():
    with pytest.raises(TimingError, match="unique"):
        CompactTimedGraph(("a", "a"), [])
    with pytest.raises(TimingError, match="unknown node"):
        CompactTimedGraph(("a",), [(0, 1, 0)])
    with pytest.raises(TimingError, match=">= 0"):
        CompactTimedGraph(("a", "b"), [(0, 1, -1)])


def test_kernels_on_hand_built_graph(library):
    timed = _diamond_timed()
    graph = timed.compact()
    delays = {"a": 300.0, "b": 500.0, "c": 200.0, "d": 100.0}
    vec = graph.delay_vector(delays)
    assert vec == [300.0, 500.0, 200.0, 100.0]
    clock = 1000.0
    arrival = arrival_kernel(graph, vec, clock)
    # a=0; b=a+300; c=a+300-1000*1; d=max(b+500, c+200-2000).
    assert arrival == [0.0, 300.0, -700.0, 800.0]
    required = required_kernel(graph, vec, clock)
    # d has no successors: T - delay(d).
    assert required[3] == clock - 100.0


# -- behavioural: 200 seeded designs, exact equality --------------------------------


_SEEDED_CASES = [
    (seed,
     2 + seed % 4,                       # layers
     3 + (seed * 7) % 5,                 # ops per layer
     2 + (seed * 3) % 6,                 # latency => wait states
     ((8, 16, 24, 32) if seed % 3 == 0 else
      (16, 32) if seed % 3 == 1 else None),   # mixed width profiles
     900.0 + 150.0 * (seed % 8))         # clock period
    for seed in range(200)
]


@pytest.mark.parametrize("chunk", range(8))
def test_kernels_exactly_match_reference_on_200_seeded_designs(
        chunk, library):
    """The acceptance sweep: kernels vs references, exact float equality,
    via the same predicate the graphkit-kernels verify oracle runs."""
    for seed, layers, ops, latency, widths, clock in \
            _SEEDED_CASES[chunk::8]:
        design, resolved = random_layered_design_seeded(
            seed=seed, layers=layers, ops_per_layer=ops, latency=latency,
            clock_period=clock, width_choices=widths)
        assert resolved == seed
        timed = build_timed_dfg(design)
        problems = kernel_vs_reference_problems(
            timed, _delays_for(design, library), clock)
        assert not problems, (seed, problems[:3])


def test_kernel_matches_reference_with_partial_delay_map(library):
    """Missing delay entries default to 0.0 on both paths."""
    design, _ = random_layered_design_seeded(seed=5, layers=3,
                                             ops_per_layer=5, latency=4)
    timed = build_timed_dfg(design)
    delays = _delays_for(design, library)
    pruned = {name: value for index, (name, value)
              in enumerate(sorted(delays.items())) if index % 2 == 0}
    assert not kernel_vs_reference_problems(timed, pruned, 1500.0)
    fast = compute_sequential_slack(timed, pruned, 1500.0, aligned=True)
    slow = compute_sequential_slack_reference(timed, pruned, 1500.0,
                                              aligned=True)
    assert list(fast.slack) == list(slow.slack)  # key order preserved too


def test_state_timing_kernel_matches_reference_on_segmented_design(library):
    design = segmented_design(
        segments=[
            ("linear", (("add", 0, 1), ("mul", 1, 2))),
            ("diamond", (("sub", 0, 1),), (("add", 1, 2),),
             (("mul", 0, 3),), (("add", 2, 4),)),
            ("linear", (("xor", 1, 5),)),
        ],
        inputs=(16, 16, 8),
        outputs=2,
        tail_states=1,
        clock_period=2000.0,
    )
    flow = conventional_flow(design, library, clock_period=2000.0)
    kernel = analyze_state_timing(flow.datapath)
    reference = analyze_state_timing_reference(flow.datapath)
    assert kernel.op_start == reference.op_start
    assert kernel.op_finish == reference.op_finish
    assert kernel.op_slack == reference.op_slack
    assert kernel.state_critical_path == reference.state_critical_path
