"""Property-based tests of the Pareto toolbox.

No third-party property-testing dependency is assumed: properties are
checked over many seeded random instances, which keeps failures
reproducible (the seed is in the parametrization).
"""

import itertools
import random

import pytest

from repro.errors import ReproError
from repro.explore.pareto import (
    FrontPoint,
    coverage,
    dominates,
    epsilon_dominates,
    front_from_metrics,
    hypervolume,
    knee_point,
    objective_vector,
    pareto_front,
    reference_point,
)


def make_points(vectors, objectives=("latency_steps", "area")):
    return [FrontPoint(label=f"p{i}", objectives=tuple(objectives),
                       values=tuple(float(v) for v in vector))
            for i, vector in enumerate(vectors)]


def random_points(rng, count, dims):
    return make_points(
        [[rng.uniform(0.0, 100.0) for _ in range(dims)] for _ in range(count)],
        objectives=tuple(f"o{d}" for d in range(dims))
        if dims != 2 else ("latency_steps", "area"),
    )


class TestDominance:
    def test_strict_dominance(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))
        assert dominates((1.0, 2.0), (1.0, 3.0))
        assert not dominates((1.0, 2.0), (1.0, 2.0))  # equality: no
        assert not dominates((1.0, 3.0), (2.0, 2.0))  # incomparable

    def test_length_mismatch_raises(self):
        with pytest.raises(ReproError):
            dominates((1.0,), (1.0, 2.0))

    def test_epsilon_dominance_additive_and_relative(self):
        assert epsilon_dominates((11.0, 5.0), (10.0, 5.0), 1.0)
        assert not epsilon_dominates((11.1, 5.0), (10.0, 5.0), 1.0)
        assert epsilon_dominates((108.0, 5.0), (100.0, 5.0), ("rel", 0.08))
        assert not epsilon_dominates((109.0, 5.0), (100.0, 5.0), ("rel", 0.08))

    def test_epsilon_per_objective_specs(self):
        eps = (2.0, ("rel", 0.10))
        assert epsilon_dominates((12.0, 110.0), (10.0, 100.0), eps)
        assert not epsilon_dominates((12.1, 110.0), (10.0, 100.0), eps)
        assert not epsilon_dominates((12.0, 110.1), (10.0, 100.0), eps)
        with pytest.raises(ReproError):
            epsilon_dominates((1.0, 2.0), (1.0, 2.0), (1.0, 2.0, 3.0))

    def test_point_epsilon_dominates_itself(self):
        assert epsilon_dominates((3.0, 4.0), (3.0, 4.0), 0.0)


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("dims", [2, 3])
def test_front_invariants(seed, dims):
    """The front is a subset, contains no dominated point, and every
    excluded point is dominated by (or duplicates) a front member."""
    rng = random.Random(seed)
    points = random_points(rng, rng.randint(1, 40), dims)
    front = pareto_front(points)

    assert front  # a non-empty set always has a non-dominated member
    assert set(id(p) for p in front) <= set(id(p) for p in points)
    for a, b in itertools.permutations(front, 2):
        assert not dominates(a.values, b.values)
        assert a.values != b.values
    front_vectors = {p.values for p in front}
    for point in points:
        if point.values in front_vectors:
            continue
        assert any(dominates(f.values, point.values) for f in front)


@pytest.mark.parametrize("seed", range(6))
def test_front_is_idempotent_and_order_preserving(seed):
    rng = random.Random(seed)
    points = random_points(rng, 25, 2)
    front = pareto_front(points)
    assert pareto_front(front) == front
    order = [id(p) for p in points]
    assert [id(p) for p in front] == sorted((id(p) for p in front),
                                            key=order.index)


def test_front_keeps_first_of_exact_duplicates():
    points = make_points([[1, 2], [1, 2], [3, 1]])
    front = pareto_front(points)
    assert [p.label for p in front] == ["p0", "p2"]


class TestHypervolume:
    def test_known_2d_volume(self):
        points = make_points([[1.0, 2.0], [2.0, 1.0]])
        # Boxes to (3,3): 2x1 + 1x2 minus 1x1 overlap = 3.
        assert hypervolume(points, (3.0, 3.0)) == pytest.approx(3.0)

    def test_point_outside_reference_contributes_nothing(self):
        points = make_points([[5.0, 5.0]])
        assert hypervolume(points, (3.0, 3.0)) == 0.0
        assert hypervolume([], (3.0, 3.0)) == 0.0

    def test_known_3d_volume(self):
        points = make_points([[0.0, 0.0, 0.0]], objectives=("o0", "o1", "o2"))
        assert hypervolume(points, (2.0, 3.0, 4.0)) == pytest.approx(24.0)

    @pytest.mark.parametrize("seed", range(8))
    def test_monotone_under_adding_points(self, seed):
        rng = random.Random(100 + seed)
        points = random_points(rng, 20, 2)
        reference = reference_point(points)
        for cut in (5, 10, 20):
            smaller = hypervolume(points[:cut - 1], reference)
            larger = hypervolume(points[:cut], reference)
            assert larger >= smaller - 1e-9

    @pytest.mark.parametrize("seed", range(8))
    def test_front_has_same_volume_as_full_set(self, seed):
        rng = random.Random(200 + seed)
        points = random_points(rng, 30, 3)
        reference = reference_point(points)
        assert hypervolume(points, reference) == pytest.approx(
            hypervolume(pareto_front(points), reference))


class TestKnee:
    def test_knee_of_convex_2d_front_is_the_bend(self):
        front = make_points([[0.0, 10.0], [1.0, 2.0], [10.0, 0.0]])
        assert knee_point(front).label == "p1"

    def test_single_point_front(self):
        front = make_points([[1.0, 1.0]])
        assert knee_point(front) is front[0]

    def test_empty_front_raises(self):
        with pytest.raises(ReproError):
            knee_point([])

    def test_higher_dimensional_fallback_is_deterministic(self):
        front = make_points([[0, 10, 5], [2, 2, 2], [10, 0, 5]],
                            objectives=("o0", "o1", "o2"))
        assert knee_point(front).label == "p1"


class TestCoverage:
    def test_identical_sets_fully_cover(self):
        points = make_points([[1, 5], [5, 1]])
        assert coverage(points, points, 0.0) == 1.0

    def test_empty_covered_set_is_vacuously_covered(self):
        assert coverage([], [], 0.0) == 1.0
        assert coverage(make_points([[1, 1]]), [], 0.0) == 1.0

    def test_partial_coverage_fraction(self):
        covering = make_points([[1.0, 5.0]])
        covered = make_points([[1.0, 5.0], [0.5, 0.5]])
        assert coverage(covering, covered, 0.0) == pytest.approx(0.5)


class TestObjectiveExtraction:
    METRICS = {
        "point": {"name": "D1", "latency": 8, "pipeline_ii": None,
                  "clock_period": 1500.0},
        "conventional": {"area": 200.0, "power": 2.0, "throughput": 0.1,
                         "latency_steps": 8, "meets_timing": True,
                         "fu_instances": 4, "registers": 9},
        "slack_based": {"area": 150.0, "power": 1.5, "throughput": 0.1,
                        "latency_steps": 8, "meets_timing": True,
                        "fu_instances": 3, "registers": 9},
        "saving_percent": 25.0,
    }

    def test_min_objectives_enter_unchanged(self):
        assert objective_vector(self.METRICS, ("latency_steps", "area")) \
            == (8.0, 150.0)

    def test_max_objectives_are_negated(self):
        vector = objective_vector(self.METRICS,
                                  ("throughput", "saving_percent"))
        assert vector == (-0.1, -25.0)

    def test_flow_selection(self):
        assert objective_vector(self.METRICS, ("area",),
                                flow="conventional") == (200.0,)

    def test_unknown_objective_raises(self):
        with pytest.raises(ReproError):
            objective_vector(self.METRICS, ("frobnication",))

    def test_missing_objective_raises(self):
        with pytest.raises(ReproError):
            objective_vector({"slack_based": {}}, ("area",))

    def test_front_from_metrics_raw_values_round_trip(self):
        [point] = front_from_metrics([self.METRICS],
                                     ("throughput", "area"))
        assert point.label == "D1"
        assert point.raw_value("throughput") == pytest.approx(0.1)
        assert point.raw_value("area") == pytest.approx(150.0)


# -- front invariants (the verification layer's pareto oracle) ----------------------


class TestFrontInvariantViolations:
    def _points(self, seed, count=30, dims=2):
        rng = random.Random(seed)
        return make_points(
            [tuple(round(rng.uniform(0, 10), 3) for _ in range(dims))
             for _ in range(count)],
            objectives=tuple(f"axis{a}" for a in range(dims))[:dims]
            if dims != 2 else ("latency_steps", "area"),
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_correct_fronts_have_no_violations(self, seed):
        from repro.explore.pareto import front_invariant_violations

        assert front_invariant_violations(self._points(seed)) == []

    def test_empty_inputs_are_clean(self):
        from repro.explore.pareto import front_invariant_violations

        assert front_invariant_violations([]) == []

    def test_foreign_front_member_is_reported(self):
        from repro.explore.pareto import front_invariant_violations

        points = make_points([(1, 2), (2, 1)])
        foreign = make_points([(0, 0)])[0]
        violations = front_invariant_violations(points,
                                                front=points + [foreign])
        assert any("not an input point" in v for v in violations)

    def test_dominated_front_member_is_reported(self):
        from repro.explore.pareto import front_invariant_violations

        points = make_points([(1, 1), (2, 2)])  # (1,1) dominates (2,2)
        violations = front_invariant_violations(points, front=points)
        assert any("dominates front member" in v for v in violations)

    def test_incomplete_front_is_reported(self):
        from repro.explore.pareto import front_invariant_violations

        points = make_points([(1, 2), (2, 1)])  # both non-dominated
        violations = front_invariant_violations(points, front=points[:1])
        assert any("neither on the front nor dominated" in v
                   for v in violations)

    def test_empty_front_for_nonempty_points_is_reported(self):
        from repro.explore.pareto import front_invariant_violations

        violations = front_invariant_violations(make_points([(1, 2)]),
                                                front=[])
        assert violations
