"""Tests of the per-oracle deadline in the fuzzing loop.

The regression: a crash-guarded oracle that *hangs* (rather than raises)
used to stall ``run_fuzz`` past ``--budget-seconds``, because the budget
was only consulted between iterations.  Each oracle call is now bounded by
``call_with_deadline`` and a hang becomes a structured ``timed_out``
failure the run steps over.
"""

import time

import pytest

from repro.core.deadline import call_with_deadline
from repro.errors import DeadlineExceeded
from repro.obs.metrics import counter
from repro.verify.oracles import Oracle
from repro.verify.runner import run_fuzz, run_oracle_guarded
from repro.verify.scenarios import ScenarioProfile, scenario_stream


def _hanging_oracle(hang_seconds=30.0):
    def check(spec, library):
        time.sleep(hang_seconds)

    return Oracle(name="hanging-test-oracle",
                  description="blocks far past any test deadline",
                  check=check)


def _spec():
    (_, spec), = list(scenario_stream(3, 1))
    return spec


class TestCallWithDeadline:
    def test_fast_calls_pass_through(self):
        assert call_with_deadline(lambda: 7, 5.0, what="fast") == 7
        assert call_with_deadline(lambda: 7, None, what="unbounded") == 7

    def test_hanging_call_raises_at_the_deadline(self):
        start = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            call_with_deadline(lambda: time.sleep(30), 0.1, what="hang")
        assert time.monotonic() - start < 5.0

    def test_exhausted_deadline_fails_without_calling(self):
        calls = []
        with pytest.raises(DeadlineExceeded):
            call_with_deadline(lambda: calls.append(1), 0.0, what="late")
        assert calls == []

    def test_body_exceptions_propagate_unwrapped(self):
        with pytest.raises(KeyError):
            call_with_deadline(lambda: {}["missing"], 5.0, what="raiser")


class TestGuardedOracleDeadline:
    def test_hanging_oracle_becomes_structured_timeout(self, library):
        before = counter("oracle.timeout").value
        start = time.monotonic()
        outcome = run_oracle_guarded(_hanging_oracle(), _spec(), library,
                                     deadline_seconds=0.1)
        assert time.monotonic() - start < 5.0
        assert not outcome.ok
        assert outcome.timed_out
        assert "timeout" in outcome.details
        assert counter("oracle.timeout").value == before + 1

    def test_fast_oracle_is_untouched_by_a_deadline(self, library):
        from repro.verify.oracles import ORACLES

        outcome = run_oracle_guarded(ORACLES["sequential-slack"], _spec(),
                                     library, deadline_seconds=30.0)
        assert outcome.ok and not outcome.timed_out


class TestFuzzLoopDeadline:
    def test_hang_cannot_stall_past_the_budget(self, library):
        # One hanging oracle, a 0.4s budget: without the per-oracle
        # deadline this test would block for hang_seconds.
        from repro.verify import runner as runner_mod

        hanging = _hanging_oracle()
        original = runner_mod.select_oracles
        try:
            runner_mod.select_oracles = lambda names: [hanging]
            start = time.monotonic()
            report = run_fuzz(seed=3, iterations=3, budget_seconds=0.4,
                              shrink=True, library=library,
                              profile=ScenarioProfile(max_segments=2))
            elapsed = time.monotonic() - start
        finally:
            runner_mod.select_oracles = original

        assert elapsed < 10.0  # nowhere near the 30s hang
        assert report.failures  # the cut-off was recorded ...
        assert report.timeouts == report.failures  # ... as timeouts
        failure = report.failures[0]
        assert failure.timed_out
        assert failure.shrunk is None  # timeouts are never shrunk
        assert failure.oracle == "hanging-test-oracle"

    def test_explicit_oracle_deadline_without_budget(self, library):
        from repro.verify import runner as runner_mod

        hanging = _hanging_oracle()
        original = runner_mod.select_oracles
        try:
            runner_mod.select_oracles = lambda names: [hanging]
            report = run_fuzz(seed=3, iterations=2, library=library,
                              profile=ScenarioProfile(max_segments=2),
                              oracle_deadline_seconds=0.1)
        finally:
            runner_mod.select_oracles = original
        assert report.iterations == 2  # the run stepped over both hangs
        assert len(report.timeouts) == 2

    def test_cli_exposes_the_oracle_deadline_flag(self):
        from repro.verify.cli import build_parser

        args = build_parser().parse_args(
            ["run", "--iterations", "1", "--oracle-deadline", "2.5"])
        assert args.oracle_deadline == 2.5
